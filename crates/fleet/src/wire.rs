//! The binary frame codec shared by every socket-backed carrier: a
//! length-prefixed, CRC-checksummed frame format that a client process
//! and the coordinator agree on byte for byte.
//!
//! The codec is deliberately tiny and self-contained (no serde, no
//! external crates): every frame is
//!
//! ```text
//! offset  size  field
//! 0       4     magic     0xB0F1_50C7, little-endian
//! 4       1     kind      1=Data, 2=Ack, 3=Ping, 4=Pong
//! 5       4     len       payload length, little-endian
//! 9       len   payload   kind-specific, fixed layout
//! 9+len   4     crc       CRC-32 (IEEE) over bytes [4, 9+len)
//! ```
//!
//! Data and Ack carry a [`WireMsg`]: `(round, client, copy)` identify the
//! update and `t_send_s` is its *virtual* send timestamp — the simulation
//! clock rides inside the frame, so real TCP transfer time never leaks
//! into a journal. Ping/Pong carry an opaque nonce; they are the
//! heartbeat lane a connection supervisor uses to detect half-open
//! connections before trusting a pooled stream.
//!
//! Decoding is *incremental*: [`decode_frame`] reads from a byte buffer
//! and answers "not enough bytes yet" (`Ok(None)`) separately from "these
//! bytes can never be a frame" (`Err`), so a reader can accumulate bytes
//! from a non-blocking socket without ever desynchronizing on a torn
//! read.

use std::fmt;
use std::io;

/// Every frame starts with this little-endian magic.
pub const FRAME_MAGIC: u32 = 0xB0F1_50C7;

/// Frames never carry more payload than this; a larger length prefix is
/// corruption, not a big message.
pub const MAX_PAYLOAD: usize = 64 * 1024;

/// Fixed overhead around the payload: magic + kind + len + crc.
pub const FRAME_OVERHEAD: usize = 4 + 1 + 4 + 4;

/// One update (or its acknowledgement) on the wire, stamped with its
/// virtual send time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireMsg {
    /// Federation round the update belongs to.
    pub round: u32,
    /// The sending client.
    pub client: u32,
    /// Duplicate index (0 = original).
    pub copy: u32,
    /// Virtual send time, simulated seconds since the run began.
    pub t_send_s: f64,
}

/// A decoded frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Frame {
    /// A client's finished update travelling to the coordinator.
    Data(WireMsg),
    /// The coordinator's receipt for one Data frame (payload echoed).
    Ack(WireMsg),
    /// Heartbeat probe on an idle connection.
    Ping(u64),
    /// Heartbeat reply (nonce echoed).
    Pong(u64),
}

/// Why a byte sequence was rejected by the decoder.
#[derive(Debug)]
pub enum WireError {
    /// The first four bytes are not [`FRAME_MAGIC`].
    BadMagic(u32),
    /// The checksum over kind + length + payload did not match.
    BadChecksum {
        /// CRC the frame claimed.
        expected: u32,
        /// CRC the received bytes actually hash to.
        actual: u32,
    },
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    Oversize(usize),
    /// The kind byte is not in the frame vocabulary.
    UnknownKind(u8),
    /// A known kind arrived with the wrong payload length.
    BadPayload {
        /// The frame kind byte.
        kind: u8,
        /// The payload length that does not fit it.
        len: usize,
    },
    /// An underlying socket/file error.
    Io(io::Error),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            WireError::BadChecksum { expected, actual } => {
                write!(f, "frame checksum mismatch: header says {expected:#010x}, bytes hash to {actual:#010x}")
            }
            WireError::Oversize(len) => {
                write!(f, "frame payload length {len} exceeds {MAX_PAYLOAD}")
            }
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::BadPayload { kind, len } => {
                write!(f, "frame kind {kind} cannot carry a {len}-byte payload")
            }
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected) over `bytes`. Bitwise — frames are
/// tens of bytes, a lookup table would be noise.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

const KIND_DATA: u8 = 1;
const KIND_ACK: u8 = 2;
const KIND_PING: u8 = 3;
const KIND_PONG: u8 = 4;

fn msg_payload(msg: &WireMsg) -> Vec<u8> {
    let mut p = Vec::with_capacity(20);
    p.extend_from_slice(&msg.round.to_le_bytes());
    p.extend_from_slice(&msg.client.to_le_bytes());
    p.extend_from_slice(&msg.copy.to_le_bytes());
    p.extend_from_slice(&msg.t_send_s.to_bits().to_le_bytes());
    p
}

fn parse_msg(payload: &[u8]) -> Option<WireMsg> {
    if payload.len() != 20 {
        return None;
    }
    Some(WireMsg {
        round: u32::from_le_bytes(payload[0..4].try_into().ok()?),
        client: u32::from_le_bytes(payload[4..8].try_into().ok()?),
        copy: u32::from_le_bytes(payload[8..12].try_into().ok()?),
        t_send_s: f64::from_bits(u64::from_le_bytes(payload[12..20].try_into().ok()?)),
    })
}

/// Serialize one frame into its canonical byte layout.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let (kind, payload) = match frame {
        Frame::Data(m) => (KIND_DATA, msg_payload(m)),
        Frame::Ack(m) => (KIND_ACK, msg_payload(m)),
        Frame::Ping(nonce) => (KIND_PING, nonce.to_le_bytes().to_vec()),
        Frame::Pong(nonce) => (KIND_PONG, nonce.to_le_bytes().to_vec()),
    };
    let mut out = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    let crc = crc32(&out[4..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Try to decode one frame from the front of `buf`.
///
/// - `Ok(Some((frame, consumed)))` — a complete, checksummed frame; the
///   caller should drain `consumed` bytes.
/// - `Ok(None)` — the buffer holds a valid *prefix* of a frame; read more
///   bytes and try again (this is how torn reads stay harmless).
/// - `Err(_)` — the bytes can never become a valid frame; the connection
///   (or file tail) is corrupt.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Frame, usize)>, WireError> {
    if buf.len() < 4 {
        if FRAME_MAGIC.to_le_bytes().starts_with(buf) {
            return Ok(None);
        }
        return Err(WireError::BadMagic(u32::from_le_bytes({
            let mut m = [0u8; 4];
            m[..buf.len()].copy_from_slice(buf);
            m
        })));
    }
    let magic = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
    if magic != FRAME_MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    if buf.len() < 9 {
        return Ok(None);
    }
    let kind = buf[4];
    let len = u32::from_le_bytes(buf[5..9].try_into().expect("4 bytes")) as usize;
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversize(len));
    }
    let total = FRAME_OVERHEAD + len;
    if buf.len() < total {
        return Ok(None);
    }
    let claimed = u32::from_le_bytes(buf[9 + len..total].try_into().expect("4 bytes"));
    let actual = crc32(&buf[4..9 + len]);
    if claimed != actual {
        return Err(WireError::BadChecksum {
            expected: claimed,
            actual,
        });
    }
    let payload = &buf[9..9 + len];
    let frame = match kind {
        KIND_DATA => Frame::Data(parse_msg(payload).ok_or(WireError::BadPayload { kind, len })?),
        KIND_ACK => Frame::Ack(parse_msg(payload).ok_or(WireError::BadPayload { kind, len })?),
        KIND_PING => Frame::Ping(u64::from_le_bytes(
            payload
                .try_into()
                .map_err(|_| WireError::BadPayload { kind, len })?,
        )),
        KIND_PONG => Frame::Pong(u64::from_le_bytes(
            payload
                .try_into()
                .map_err(|_| WireError::BadPayload { kind, len })?,
        )),
        other => return Err(WireError::UnknownKind(other)),
    };
    Ok(Some((frame, total)))
}

/// An incremental frame reader over any [`io::Read`]: accumulates bytes
/// across torn reads and yields complete frames. Read timeouts surface as
/// `Ok(None)` from [`FrameReader::poll`], so a caller can interleave
/// shutdown checks with blocking reads without ever desynchronizing.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    scratch: [u8; 4096],
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        FrameReader {
            buf: Vec::new(),
            scratch: [0u8; 4096],
        }
    }

    /// If the buffer already holds a complete frame, pop it without
    /// touching the socket.
    pub fn pop(&mut self) -> Result<Option<Frame>, WireError> {
        match decode_frame(&self.buf)? {
            Some((frame, consumed)) => {
                self.buf.drain(..consumed);
                Ok(Some(frame))
            }
            None => Ok(None),
        }
    }

    /// Read once from `r` and try to pop a frame. Returns:
    ///
    /// - `Ok(Some(frame))` — a complete frame is available;
    /// - `Ok(None)` — no complete frame yet (timeout, or a partial read);
    /// - `Err(WireError::Io)` with `ErrorKind::UnexpectedEof` — the peer
    ///   closed the connection cleanly;
    /// - any other `Err` — corruption or a hard socket error.
    pub fn poll(&mut self, r: &mut impl io::Read) -> Result<Option<Frame>, WireError> {
        if let Some(frame) = self.pop()? {
            return Ok(Some(frame));
        }
        match r.read(&mut self.scratch) {
            Ok(0) => Err(WireError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "peer closed the connection",
            ))),
            Ok(n) => {
                self.buf.extend_from_slice(&self.scratch[..n]);
                self.pop()
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(None),
            Err(e) => Err(WireError::Io(e)),
        }
    }
}

impl Default for FrameReader {
    fn default() -> Self {
        FrameReader::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg() -> WireMsg {
        WireMsg {
            round: 7,
            client: 42,
            copy: 0,
            t_send_s: 123.456,
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip() {
        for frame in [
            Frame::Data(msg()),
            Frame::Ack(msg()),
            Frame::Ping(0xDEAD_BEEF),
            Frame::Pong(1),
        ] {
            let bytes = encode_frame(&frame);
            let (decoded, consumed) = decode_frame(&bytes).unwrap().unwrap();
            assert_eq!(decoded, frame);
            assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn partial_prefixes_ask_for_more_bytes() {
        let bytes = encode_frame(&Frame::Data(msg()));
        for cut in 0..bytes.len() {
            assert!(
                decode_frame(&bytes[..cut]).unwrap().is_none(),
                "cut at {cut} must be a valid prefix"
            );
        }
    }

    #[test]
    fn corruption_is_rejected_not_misread() {
        let mut bytes = encode_frame(&Frame::Data(msg()));
        // Flip a payload bit: checksum must catch it.
        bytes[12] ^= 0x40;
        assert!(matches!(
            decode_frame(&bytes),
            Err(WireError::BadChecksum { .. })
        ));
        // Wrong magic is rejected on the first byte.
        assert!(matches!(
            decode_frame(&[0xFFu8, 0, 0, 0, 0]),
            Err(WireError::BadMagic(_))
        ));
        // An absurd length prefix is corruption, not a big frame.
        let mut oversize = encode_frame(&Frame::Ping(0));
        oversize[5..9].copy_from_slice(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
        assert!(matches!(
            decode_frame(&oversize),
            Err(WireError::Oversize(_))
        ));
    }

    #[test]
    fn back_to_back_frames_decode_in_order() {
        let mut stream = encode_frame(&Frame::Ping(1));
        stream.extend_from_slice(&encode_frame(&Frame::Data(msg())));
        let (first, n) = decode_frame(&stream).unwrap().unwrap();
        assert_eq!(first, Frame::Ping(1));
        let (second, _) = decode_frame(&stream[n..]).unwrap().unwrap();
        assert_eq!(second, Frame::Data(msg()));
    }

    #[test]
    fn frame_reader_survives_torn_reads() {
        struct Dribble {
            bytes: Vec<u8>,
            at: usize,
        }
        impl io::Read for Dribble {
            fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
                if self.at >= self.bytes.len() {
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "dry"));
                }
                out[0] = self.bytes[self.at]; // one byte at a time
                self.at += 1;
                Ok(1)
            }
        }
        let mut bytes = encode_frame(&Frame::Data(msg()));
        bytes.extend_from_slice(&encode_frame(&Frame::Pong(9)));
        let mut src = Dribble { bytes, at: 0 };
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        for _ in 0..10_000 {
            match reader.poll(&mut src) {
                Ok(Some(f)) => got.push(f),
                Ok(None) => {}
                Err(e) => panic!("unexpected {e}"),
            }
            if got.len() == 2 {
                break;
            }
        }
        assert_eq!(got, vec![Frame::Data(msg()), Frame::Pong(9)]);
    }
}
