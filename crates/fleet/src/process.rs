//! Cross-process client harness: spawn real OS processes that speak the
//! [`crate::wire`] frame protocol back to a coordinator socket.
//!
//! Two halves live here so the coordinator-side tests and the client
//! binary share one implementation:
//!
//! - [`client_main`] — the body of a process client: connect to the
//!   coordinator, send one Data frame, wait for the matching Ack. A thin
//!   `socket_client` binary in `bofl-control` wraps it.
//! - [`ProcessClientHarness`] — the coordinator-side babysitter: spawns
//!   client processes via `std::process::Command`, waits for them, and
//!   kills stragglers on drop so a failing test never leaks children.

use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use crate::wire::{encode_frame, Frame, FrameReader, WireMsg};

/// What one process client sends: a single update identified by
/// `(round, client, copy)` with its virtual send timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientSpec {
    /// Client id the update claims to come from.
    pub client_id: usize,
    /// Federation round the update belongs to.
    pub round: usize,
    /// Virtual send time in simulated seconds.
    pub t_send_s: f64,
}

/// Run the client side of the socket protocol: connect to `addr`, send
/// one Data frame for `spec`, and block until the coordinator acks it
/// (or `ack_timeout` elapses).
///
/// # Errors
///
/// Any connect, write, decode, or timeout failure comes back as a typed
/// [`std::io::Error`]; the caller (the `socket_client` bin) turns it into
/// a nonzero exit status.
pub fn client_main(addr: &str, spec: ClientSpec, ack_timeout: Duration) -> std::io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let msg = WireMsg {
        round: spec.round as u32,
        client: spec.client_id as u32,
        copy: 0,
        t_send_s: spec.t_send_s,
    };
    stream.write_all(&encode_frame(&Frame::Data(msg)))?;
    stream.flush()?;
    let deadline = Instant::now() + ack_timeout;
    let mut reader = FrameReader::new();
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                format!(
                    "no ack for client {} within {ack_timeout:?}",
                    spec.client_id
                ),
            ));
        }
        stream.set_read_timeout(Some(remaining.min(Duration::from_millis(100))))?;
        match reader.poll(&mut stream) {
            Ok(Some(Frame::Ack(ack))) if ack.round == msg.round && ack.client == msg.client => {
                return Ok(());
            }
            Ok(Some(_)) | Ok(None) => {}
            Err(e) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("client {} wire error: {e}", spec.client_id),
                ));
            }
        }
    }
}

/// Parse the `socket_client` command line (`--addr A --client N --round R
/// --t-send F [--ack-timeout-ms M]`) into the pieces [`client_main`]
/// needs. Shared with the binary so tests can pin the contract.
///
/// # Errors
///
/// Returns a human-readable description of the first malformed or
/// missing argument.
pub fn parse_client_args(args: &[String]) -> Result<(String, ClientSpec, Duration), String> {
    let mut addr = None;
    let mut client_id = None;
    let mut round = None;
    let mut t_send_s = None;
    let mut ack_timeout = Duration::from_secs(10);
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| format!("flag {flag} is missing its value"))?;
        match flag.as_str() {
            "--addr" => addr = Some(value.clone()),
            "--client" => {
                client_id = Some(
                    value
                        .parse::<usize>()
                        .map_err(|e| format!("--client: {e}"))?,
                )
            }
            "--round" => {
                round = Some(
                    value
                        .parse::<usize>()
                        .map_err(|e| format!("--round: {e}"))?,
                )
            }
            "--t-send" => {
                t_send_s = Some(value.parse::<f64>().map_err(|e| format!("--t-send: {e}"))?)
            }
            "--ack-timeout-ms" => {
                ack_timeout = Duration::from_millis(
                    value
                        .parse::<u64>()
                        .map_err(|e| format!("--ack-timeout-ms: {e}"))?,
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let spec = ClientSpec {
        client_id: client_id.ok_or("--client is required")?,
        round: round.ok_or("--round is required")?,
        t_send_s: t_send_s.ok_or("--t-send is required")?,
    };
    Ok((addr.ok_or("--addr is required")?, spec, ack_timeout))
}

/// Coordinator-side process supervisor for integration tests and demos:
/// spawns one OS process per client and reaps them.
#[derive(Debug)]
pub struct ProcessClientHarness {
    exe: PathBuf,
    addr: String,
    children: Vec<(usize, Child)>,
}

impl ProcessClientHarness {
    /// A harness that spawns `exe` (the `socket_client` binary) pointed
    /// at the coordinator listening on `addr`.
    pub fn new(exe: impl Into<PathBuf>, addr: impl Into<String>) -> Self {
        ProcessClientHarness {
            exe: exe.into(),
            addr: addr.into(),
            children: Vec::new(),
        }
    }

    /// Spawn one client process for `spec`. Stdout/stderr are inherited
    /// so a failing client's message lands in the test log.
    ///
    /// # Errors
    ///
    /// Propagates the spawn failure.
    pub fn spawn(&mut self, spec: ClientSpec) -> std::io::Result<()> {
        let child = Command::new(&self.exe)
            .arg("--addr")
            .arg(&self.addr)
            .arg("--client")
            .arg(spec.client_id.to_string())
            .arg("--round")
            .arg(spec.round.to_string())
            .arg("--t-send")
            .arg(format!("{:.17e}", spec.t_send_s))
            .stdin(Stdio::null())
            .spawn()?;
        self.children.push((spec.client_id, child));
        Ok(())
    }

    /// Wait for every spawned client; returns `(client_id, success)`
    /// pairs in spawn order.
    ///
    /// # Errors
    ///
    /// Propagates the first wait failure.
    pub fn wait_all(&mut self) -> std::io::Result<Vec<(usize, bool)>> {
        let mut out = Vec::with_capacity(self.children.len());
        for (id, mut child) in self.children.drain(..) {
            let status = child.wait()?;
            out.push((id, status.success()));
        }
        Ok(out)
    }

    /// Kill every still-running client (best effort).
    pub fn kill_all(&mut self) {
        for (_, child) in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
        self.children.clear();
    }
}

impl Drop for ProcessClientHarness {
    fn drop(&mut self) {
        self.kill_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|p| p.to_string()).collect()
    }

    #[test]
    fn args_round_trip() {
        let (addr, spec, timeout) = parse_client_args(&s(&[
            "--addr",
            "127.0.0.1:9001",
            "--client",
            "7",
            "--round",
            "3",
            "--t-send",
            "12.5",
            "--ack-timeout-ms",
            "250",
        ]))
        .unwrap();
        assert_eq!(addr, "127.0.0.1:9001");
        assert_eq!(
            spec,
            ClientSpec {
                client_id: 7,
                round: 3,
                t_send_s: 12.5
            }
        );
        assert_eq!(timeout, Duration::from_millis(250));
    }

    #[test]
    fn missing_and_unknown_flags_are_named() {
        let err =
            parse_client_args(&s(&["--addr", "x", "--client", "1", "--round", "0"])).unwrap_err();
        assert!(err.contains("--t-send"), "got: {err}");
        let err = parse_client_args(&s(&["--frobnicate", "1"])).unwrap_err();
        assert!(err.contains("--frobnicate"), "got: {err}");
    }

    #[test]
    fn t_send_survives_the_command_line_exactly() {
        // The harness formats t_send with enough digits that the value the
        // child parses is bit-identical — virtual timestamps must not
        // drift through the exec boundary.
        let t = 123.456_789_012_345_67_f64;
        let formatted = format!("{t:.17e}");
        let parsed: f64 = formatted.parse().unwrap();
        assert_eq!(parsed.to_bits(), t.to_bits());
    }
}
