//! Pluggable client-sampling policies for fleets far larger than the
//! per-round cohort.
//!
//! At fleet scale the server never runs *everyone*: each round it picks a
//! cohort of a few thousand out of a registered population of up to
//! millions. The literature (PAPERS.md: "Cost-Effective Federated
//! Learning Design"; "Scheduling Algorithms for FL with Minimal Energy
//! Consumption") shows the sampling distribution is a first-order lever
//! on both convergence and energy — so it is a seam here, not a policy
//! baked into the server.
//!
//! Every sampler is a pure function of `(seed, round, fleet stats)`: the
//! same inputs yield the same cohort on any thread, any worker count, any
//! machine running the same binary. Weighted policies use the
//! Efraimidis–Spirakis one-pass reservoir scheme (smallest `-ln(u)/w`
//! keys win), which gives exact weighted sampling *without replacement*
//! in O(fleet · log cohort) with a bounded heap — no shuffling of a
//! million-entry vector.

use std::collections::BinaryHeap;

use crate::fault::stream_seed;
use crate::generator::DeviceKind;

/// Salt distinguishing the sampler's draw stream from fault/chaos draws.
const SAMPLER_SALT: u64 = 0x005A_3917_C040_57A7;

/// The compact per-client record a scale fleet keeps in RAM — a few
/// dozen bytes per client instead of a live `FlClient`, which is what
/// makes a million-client registry a ~24 MB table rather than gigabytes
/// of model replicas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientStat {
    /// Client id (dense, `0..fleet_size`).
    pub id: u32,
    /// Local dataset size — the FedAvg aggregation weight.
    pub samples: u32,
    /// Estimated full-round energy at `x_max`, joules (device-class
    /// baseline with unit-level spread).
    pub energy_j_est: f32,
    /// Most recently reported local training loss.
    pub last_loss: f32,
    /// Round this client last participated in (`u32::MAX` = never).
    pub last_selected: u32,
    /// The board class this client runs on.
    pub kind: DeviceKind,
}

impl ClientStat {
    /// Rounds since this client last participated, as of `round`
    /// (`round + 1` when it never has — maximally stale).
    pub fn staleness(&self, round: usize) -> u32 {
        if self.last_selected == u32::MAX {
            round as u32 + 1
        } else {
            (round as u32).saturating_sub(self.last_selected)
        }
    }
}

/// Chooses each round's cohort out of the registered fleet.
///
/// Contract: `sample` must be a pure function of its arguments, must
/// return at most `cohort` *distinct* ids, and must leave `out` sorted
/// ascending (the canonical cohort order every downstream consumer —
/// shard planner, trace, journal — assumes).
pub trait ClientSampler: Send + Sync {
    /// Short policy name for traces and artifacts.
    fn label(&self) -> &'static str;

    /// Fills `out` with the round's cohort, sorted ascending by id.
    fn sample(
        &self,
        fleet: &[ClientStat],
        cohort: usize,
        round: usize,
        seed: u64,
        out: &mut Vec<u32>,
    );

    /// Boxed clone, so engines holding a sampler stay cloneable.
    fn clone_box(&self) -> Box<dyn ClientSampler>;
}

impl Clone for Box<dyn ClientSampler> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Uniform sampling without replacement: every client equally likely.
/// The scale analogue of the vanilla FedAvg server (and the paper's
/// assumption).
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformSampler;

/// Energy-aware sampling (AutoFL-style, paper §2.1): client weight is
/// `energy_est^-alpha`, so efficient devices participate more often but
/// expensive ones still appear (statistical coverage of non-IID data).
#[derive(Debug, Clone, Copy)]
pub struct EnergyAwareSampler {
    /// Preference strength (`0` = uniform; `1` = inverse-energy;
    /// larger = greedier).
    pub alpha: f64,
}

impl Default for EnergyAwareSampler {
    fn default() -> Self {
        EnergyAwareSampler { alpha: 1.0 }
    }
}

/// Loss- and staleness-weighted sampling ("pick the clients the model
/// has learned least from, and the ones it hasn't seen lately"):
/// weight is `(last_loss + ε)^loss_exp · (1 + staleness)^staleness_exp`.
#[derive(Debug, Clone, Copy)]
pub struct LossStalenessSampler {
    /// Exponent on the client's last reported loss.
    pub loss_exp: f64,
    /// Exponent on rounds-since-last-participation.
    pub staleness_exp: f64,
}

impl Default for LossStalenessSampler {
    fn default() -> Self {
        LossStalenessSampler {
            loss_exp: 1.0,
            staleness_exp: 0.5,
        }
    }
}

/// A uniform draw in `(0, 1]`, pure in `(seed, round, id)`. The open
/// lower bound keeps `ln` finite for the weighted keys.
fn unit_draw(seed: u64, round: usize, id: u32) -> f64 {
    let mut h = stream_seed(seed, round, id as usize, SAMPLER_SALT);
    // splitmix64 finalizer: turns the XOR mix into well-distributed bits.
    h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    (((h >> 11) as f64) + 1.0) / (1u64 << 53) as f64
}

/// A max-heap entry ordered by `(key, id)`; the heap keeps the cohort's
/// *smallest* keys by evicting its largest root.
struct HeapKey(f64, u32);

impl PartialEq for HeapKey {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0).is_eq() && self.1 == other.1
    }
}
impl Eq for HeapKey {}
impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

/// Shared smallest-`cohort`-keys scan: one pass over the fleet, bounded
/// heap, then the winners sorted ascending by id.
fn smallest_k(
    fleet: &[ClientStat],
    cohort: usize,
    out: &mut Vec<u32>,
    mut key: impl FnMut(&ClientStat) -> f64,
) {
    out.clear();
    if cohort == 0 || fleet.is_empty() {
        return;
    }
    let k = cohort.min(fleet.len());
    let mut heap: BinaryHeap<HeapKey> = BinaryHeap::with_capacity(k + 1);
    for stat in fleet {
        let entry = HeapKey(key(stat), stat.id);
        if heap.len() < k {
            heap.push(entry);
        } else if entry < *heap.peek().expect("heap is non-empty at capacity") {
            heap.pop();
            heap.push(entry);
        }
    }
    out.extend(heap.into_iter().map(|HeapKey(_, id)| id));
    out.sort_unstable();
}

impl ClientSampler for UniformSampler {
    fn label(&self) -> &'static str {
        "uniform"
    }

    fn sample(
        &self,
        fleet: &[ClientStat],
        cohort: usize,
        round: usize,
        seed: u64,
        out: &mut Vec<u32>,
    ) {
        smallest_k(fleet, cohort, out, |s| unit_draw(seed, round, s.id));
    }

    fn clone_box(&self) -> Box<dyn ClientSampler> {
        Box::new(*self)
    }
}

impl ClientSampler for EnergyAwareSampler {
    fn label(&self) -> &'static str {
        "energy_aware"
    }

    fn sample(
        &self,
        fleet: &[ClientStat],
        cohort: usize,
        round: usize,
        seed: u64,
        out: &mut Vec<u32>,
    ) {
        let alpha = self.alpha;
        smallest_k(fleet, cohort, out, |s| {
            let u = unit_draw(seed, round, s.id);
            let energy = (s.energy_j_est as f64).max(1e-6);
            // Efraimidis–Spirakis key for weight energy^-alpha.
            -u.ln() * energy.powf(alpha)
        });
    }

    fn clone_box(&self) -> Box<dyn ClientSampler> {
        Box::new(*self)
    }
}

impl ClientSampler for LossStalenessSampler {
    fn label(&self) -> &'static str {
        "loss_staleness"
    }

    fn sample(
        &self,
        fleet: &[ClientStat],
        cohort: usize,
        round: usize,
        seed: u64,
        out: &mut Vec<u32>,
    ) {
        smallest_k(fleet, cohort, out, |s| {
            let u = unit_draw(seed, round, s.id);
            let loss = (s.last_loss as f64 + 0.05).max(1e-6);
            let fresh = 1.0 + s.staleness(round) as f64;
            let w = loss.powf(self.loss_exp) * fresh.powf(self.staleness_exp);
            -u.ln() / w
        });
    }

    fn clone_box(&self) -> Box<dyn ClientSampler> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: usize) -> Vec<ClientStat> {
        (0..n)
            .map(|id| ClientStat {
                id: id as u32,
                samples: 100,
                energy_j_est: if id % 2 == 0 { 50.0 } else { 200.0 },
                last_loss: if id < n / 2 { 0.2 } else { 2.0 },
                last_selected: u32::MAX,
                kind: DeviceKind::JetsonAgx,
            })
            .collect()
    }

    fn assert_cohort_shape(out: &[u32], cohort: usize, fleet_len: usize) {
        assert_eq!(out.len(), cohort.min(fleet_len));
        assert!(out.windows(2).all(|w| w[0] < w[1]), "sorted + distinct");
        assert!(out.iter().all(|&id| (id as usize) < fleet_len));
    }

    #[test]
    fn samplers_are_deterministic_and_canonical() {
        let fleet = fleet(500);
        let samplers: Vec<Box<dyn ClientSampler>> = vec![
            Box::new(UniformSampler),
            Box::new(EnergyAwareSampler::default()),
            Box::new(LossStalenessSampler::default()),
        ];
        for s in &samplers {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            s.sample(&fleet, 64, 3, 42, &mut a);
            s.sample(&fleet, 64, 3, 42, &mut b);
            assert_eq!(a, b, "{} must be pure", s.label());
            assert_cohort_shape(&a, 64, fleet.len());
            s.sample(&fleet, 64, 4, 42, &mut b);
            assert_ne!(a, b, "{} must vary by round", s.label());
        }
    }

    #[test]
    fn uniform_covers_the_fleet_over_rounds() {
        let fleet = fleet(200);
        let mut seen = [false; 200];
        let mut out = Vec::new();
        for round in 0..40 {
            UniformSampler.sample(&fleet, 20, round, 7, &mut out);
            for &id in &out {
                seen[id as usize] = true;
            }
        }
        let covered = seen.iter().filter(|&&s| s).count();
        assert!(
            covered > 180,
            "uniform should touch most clients: {covered}"
        );
    }

    #[test]
    fn energy_aware_prefers_cheap_clients() {
        let fleet = fleet(1000);
        let mut out = Vec::new();
        let mut cheap = 0usize;
        let mut total = 0usize;
        for round in 0..20 {
            EnergyAwareSampler { alpha: 2.0 }.sample(&fleet, 50, round, 9, &mut out);
            cheap += out.iter().filter(|&&id| id % 2 == 0).count();
            total += out.len();
        }
        assert!(
            cheap as f64 > total as f64 * 0.75,
            "cheap devices should dominate: {cheap}/{total}"
        );
    }

    #[test]
    fn loss_weighted_prefers_high_loss_clients() {
        let fleet = fleet(1000);
        let mut out = Vec::new();
        let mut lossy = 0usize;
        let mut total = 0usize;
        for round in 0..20 {
            LossStalenessSampler {
                loss_exp: 2.0,
                staleness_exp: 0.0,
            }
            .sample(&fleet, 50, round, 11, &mut out);
            lossy += out.iter().filter(|&&id| id >= 500).count();
            total += out.len();
        }
        assert!(
            lossy as f64 > total as f64 * 0.75,
            "high-loss clients should dominate: {lossy}/{total}"
        );
    }

    #[test]
    fn staleness_pressure_recalls_neglected_clients() {
        let mut fleet = fleet(100);
        // Everyone participated recently except client 7.
        for s in fleet.iter_mut() {
            s.last_selected = 99;
            s.last_loss = 1.0;
        }
        fleet[7].last_selected = 0;
        let sampler = LossStalenessSampler {
            loss_exp: 0.0,
            staleness_exp: 4.0,
        };
        let mut out = Vec::new();
        let mut hits = 0;
        for round in 100..120 {
            sampler.sample(&fleet, 10, round, 13, &mut out);
            hits += usize::from(out.contains(&7));
        }
        assert!(
            hits >= 18,
            "stale client should almost always be recalled: {hits}/20"
        );
    }

    #[test]
    fn cohort_larger_than_fleet_returns_everyone() {
        let fleet = fleet(8);
        let mut out = Vec::new();
        UniformSampler.sample(&fleet, 100, 0, 1, &mut out);
        assert_eq!(out, (0..8).collect::<Vec<u32>>());
    }
}
