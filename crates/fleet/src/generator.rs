//! Heterogeneous fleet generation: sampling per-client device profiles
//! from the testbed models.
//!
//! A production FL population is never a row of identical dev boards: it
//! mixes hardware generations, and two units of the *same* board differ in
//! thermal headroom, case design and background load. The generator models
//! that as a deterministic function of `(fleet seed, client id)`: each
//! client gets a device kind (AGX or TX2) and its own latency-jitter /
//! DVFS-transition-latency perturbation on top of the testbed baseline.

use bofl_device::Device;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which testbed board a sampled client runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// NVIDIA Jetson AGX Xavier (the paper's high-end board).
    JetsonAgx,
    /// NVIDIA Jetson TX2 (the paper's low-end board).
    JetsonTx2,
}

impl DeviceKind {
    /// Instantiates the baseline testbed device for this kind.
    pub fn baseline(&self) -> Device {
        match self {
            DeviceKind::JetsonAgx => Device::jetson_agx(),
            DeviceKind::JetsonTx2 => Device::jetson_tx2(),
        }
    }

    /// Nominal energy one full FL round costs on this board at `x_max`,
    /// joules — the coarse per-class baseline the million-client scale
    /// simulator uses instead of instantiating a device model per client
    /// (the AGX finishes faster at higher power; the TX2 runs longer and
    /// spends more in total, matching the testbed profiles).
    pub fn nominal_round_energy_j(&self) -> f64 {
        match self {
            DeviceKind::JetsonAgx => 95.0,
            DeviceKind::JetsonTx2 => 140.0,
        }
    }
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceKind::JetsonAgx => write!(f, "AGX"),
            DeviceKind::JetsonTx2 => write!(f, "TX2"),
        }
    }
}

/// One sampled client: its board and its unit-level perturbations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientProfile {
    /// Client id within the fleet.
    pub id: usize,
    /// The board this client runs on.
    pub kind: DeviceKind,
    /// Per-job relative latency jitter (thermal/interference noise).
    pub latency_jitter: f64,
    /// Multiplier on the board's baseline DVFS transition latency
    /// (governor/firmware variation between units).
    pub transition_scale: f64,
}

impl ClientProfile {
    /// Builds the concrete [`Device`] for this profile.
    pub fn device(&self) -> Device {
        let base = self.kind.baseline();
        let transition = base.transition_latency_s() * self.transition_scale;
        base.with_latency_jitter(self.latency_jitter)
            .with_transition_latency_s(transition)
    }
}

/// A recipe for a heterogeneous fleet. Every quantity a client's hardware
/// derives from is a pure function of `(seed, id)`, so a spec with the
/// same seed always generates the same fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetSpec {
    /// Number of clients to generate.
    pub num_clients: usize,
    /// Fraction of clients on the AGX board (the rest get TX2).
    pub agx_fraction: f64,
    /// Range `[lo, hi]` the per-client latency jitter is drawn from.
    pub jitter_range: (f64, f64),
    /// Half-width of the transition-latency perturbation: each client's
    /// scale is drawn from `[1 − w, 1 + w]`.
    pub transition_spread: f64,
    /// Fleet seed. Fully determines every profile.
    pub seed: u64,
}

impl FleetSpec {
    /// A 50/50 AGX/TX2 fleet with moderate unit-level variation — the
    /// default heterogeneous population.
    pub fn mixed(num_clients: usize, seed: u64) -> Self {
        FleetSpec {
            num_clients,
            agx_fraction: 0.5,
            jitter_range: (0.01, 0.06),
            transition_spread: 0.25,
            seed,
        }
    }

    /// An all-AGX fleet (homogeneous hardware, still unit-level jitter).
    pub fn uniform_agx(num_clients: usize, seed: u64) -> Self {
        FleetSpec {
            agx_fraction: 1.0,
            ..FleetSpec::mixed(num_clients, seed)
        }
    }

    /// Overrides the AGX fraction.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    #[must_use]
    pub fn with_agx_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        self.agx_fraction = fraction;
        self
    }

    /// The deterministic profile of client `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= num_clients`.
    pub fn profile(&self, id: usize) -> ClientProfile {
        assert!(id < self.num_clients, "client {id} outside fleet");
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ (id as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93) ^ 0xF1EE7,
        );
        let kind = if rng.gen::<f64>() < self.agx_fraction {
            DeviceKind::JetsonAgx
        } else {
            DeviceKind::JetsonTx2
        };
        let (lo, hi) = self.jitter_range;
        let latency_jitter = lo + (hi - lo) * rng.gen::<f64>();
        let w = self.transition_spread;
        let transition_scale = 1.0 - w + 2.0 * w * rng.gen::<f64>();
        ClientProfile {
            id,
            kind,
            latency_jitter,
            transition_scale,
        }
    }

    /// All profiles, in id order.
    pub fn profiles(&self) -> Vec<ClientProfile> {
        (0..self.num_clients).map(|id| self.profile(id)).collect()
    }

    /// Builds the concrete device for client `id` — drop-in for
    /// `FederationBuilder::device_factory`:
    ///
    /// ```
    /// use bofl_fleet::FleetSpec;
    /// use bofl_fl::{Federation, FederationConfig};
    ///
    /// let spec = FleetSpec::mixed(8, 42);
    /// let config = FederationConfig {
    ///     num_clients: spec.num_clients,
    ///     rounds: 1,
    ///     ..FederationConfig::default()
    /// };
    /// let sim = Federation::builder(config)
    ///     .device_factory(move |id| spec.device(id))
    ///     .build();
    /// assert_eq!(sim.num_clients(), 8);
    /// ```
    pub fn device(&self, id: usize) -> Device {
        self.profile(id).device()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_deterministic() {
        let spec = FleetSpec::mixed(32, 99);
        assert_eq!(spec.profiles(), FleetSpec::mixed(32, 99).profiles());
        // A different seed reshuffles the fleet.
        assert_ne!(spec.profiles(), FleetSpec::mixed(32, 100).profiles());
    }

    #[test]
    fn mixed_fleet_contains_both_boards() {
        let profiles = FleetSpec::mixed(64, 7).profiles();
        let agx = profiles
            .iter()
            .filter(|p| p.kind == DeviceKind::JetsonAgx)
            .count();
        assert!(agx > 10 && agx < 54, "roughly balanced mix, got {agx}/64");
    }

    #[test]
    fn uniform_agx_is_all_agx() {
        assert!(FleetSpec::uniform_agx(16, 3)
            .profiles()
            .iter()
            .all(|p| p.kind == DeviceKind::JetsonAgx));
    }

    #[test]
    fn perturbations_stay_in_spec_ranges() {
        let spec = FleetSpec::mixed(100, 5);
        for p in spec.profiles() {
            assert!((0.01..=0.06).contains(&p.latency_jitter));
            assert!((0.75..=1.25).contains(&p.transition_scale));
        }
    }

    #[test]
    fn device_applies_profile() {
        let spec = FleetSpec::mixed(4, 11);
        let p = spec.profile(2);
        let d = spec.device(2);
        assert_eq!(d.latency_jitter(), p.latency_jitter);
        let base = p.kind.baseline();
        let expect = base.transition_latency_s() * p.transition_scale;
        assert!((d.transition_latency_s() - expect).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "outside fleet")]
    fn rejects_out_of_range_id() {
        let _ = FleetSpec::mixed(4, 0).profile(4);
    }
}
