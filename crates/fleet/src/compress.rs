//! Update compression for the simulated uplink: quantized and sparse
//! encodings of client deltas, with error feedback.
//!
//! At fleet scale the uplink — not the server CPU — is the scarce
//! resource: a million dense f64 updates per round is terabytes on the
//! wire. The [`Compressor`] seam models the standard remedies:
//!
//! - [`Int8Quantizer`] — per-update absmax scaling to one signed byte per
//!   parameter with **stochastic rounding** (unbiased: the expected
//!   dequantized value equals the input), seeded per `(round, client)`
//!   stream so every engine reproduces the identical bytes;
//! - [`TopKSparsifier`] — keep only the `k` largest-magnitude entries and
//!   carry the rest forward in an **error-feedback residual**, so nothing
//!   is ever lost, merely delayed (the residual invariant
//!   `sent + residual' == update + residual` holds *exactly* in f64);
//! - [`NoCompression`] — the identity encoding, for baselines.
//!
//! Compression is lossy per round but deterministic: the decoded update
//! is a pure function of `(update, stream seed, residual)`, which keeps
//! the repo-wide byte-identical-trace contract intact at any shard or
//! worker count.

/// Wire encoding of one compressed client update.
///
/// One reusable buffer object per worker: compressors overwrite it in
/// place, so the steady-state uplink path allocates nothing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompressedUpdate {
    kind: Kind,
    dim: usize,
    scale: f64,
    bytes: Vec<i8>,
    indices: Vec<u32>,
    values: Vec<f64>,
    scratch: Vec<f64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Kind {
    /// Dense f64 payload (identity encoding).
    #[default]
    Dense,
    /// Absmax int8 with a shared f32 scale.
    Int8,
    /// Sparse `(index, value)` pairs.
    TopK,
}

impl CompressedUpdate {
    /// An empty buffer ready for reuse.
    pub fn new() -> Self {
        CompressedUpdate::default()
    }

    /// Dimensionality of the (decoded) update.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Simulated bytes this encoding occupies on the wire:
    /// dense `8·dim`; int8 `4 + dim` (f32 scale + one byte per
    /// parameter); top-k `4 + 12·k` (u32 count + u32 index + f64 value
    /// per kept entry).
    pub fn wire_bytes(&self) -> u64 {
        match self.kind {
            Kind::Dense => 8 * self.dim as u64,
            Kind::Int8 => 4 + self.dim as u64,
            Kind::TopK => 4 + 12 * self.values.len() as u64,
        }
    }

    /// Bytes the uncompressed dense update would have occupied.
    pub fn raw_bytes(&self) -> u64 {
        8 * self.dim as u64
    }

    /// Decodes the dense f64 update into `out` (cleared and refilled).
    pub fn decode_into(&self, out: &mut Vec<f64>) {
        out.clear();
        match self.kind {
            Kind::Dense => out.extend_from_slice(&self.values),
            Kind::Int8 => {
                out.extend(self.bytes.iter().map(|&q| q as f64 * self.scale));
            }
            Kind::TopK => {
                out.resize(self.dim, 0.0);
                for (&i, &v) in self.indices.iter().zip(self.values.iter()) {
                    out[i as usize] = v;
                }
            }
        }
    }

    /// Number of nonzero entries actually carried (diagnostics).
    pub fn carried(&self) -> usize {
        match self.kind {
            Kind::Dense => self.dim,
            Kind::Int8 => self.dim,
            Kind::TopK => self.values.len(),
        }
    }
}

/// A deterministic uplink encoder. `compress` must be a pure function of
/// `(update, seed, residual)` and must leave `out` decodable to the
/// values whose bytes it reports — the simulation *aggregates what was
/// decoded*, so compression loss is faithfully visible in the model.
pub trait Compressor: Send + Sync + std::fmt::Debug {
    /// Short encoder name for traces and artifacts.
    fn label(&self) -> &'static str;

    /// Encodes `update` into `out`. When `residual` is `Some`, the
    /// compressor applies error feedback: it compresses
    /// `update + residual` and stores what it could not send back into
    /// `residual` (resizing it to `update.len()` on first use).
    fn compress(
        &self,
        update: &[f64],
        seed: u64,
        residual: Option<&mut Vec<f64>>,
        out: &mut CompressedUpdate,
    );

    /// Boxed clone, so engines holding a compressor stay cloneable.
    fn clone_box(&self) -> Box<dyn Compressor>;
}

impl Clone for Box<dyn Compressor> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The identity encoding: full dense f64 on the wire.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCompression;

impl Compressor for NoCompression {
    fn label(&self) -> &'static str {
        "dense"
    }

    fn compress(
        &self,
        update: &[f64],
        _seed: u64,
        residual: Option<&mut Vec<f64>>,
        out: &mut CompressedUpdate,
    ) {
        // With error feedback enabled, flush any residual a lossier
        // predecessor left behind — identity encoding loses nothing.
        out.kind = Kind::Dense;
        out.dim = update.len();
        out.values.clear();
        out.values.extend_from_slice(update);
        if let Some(res) = residual {
            res.resize(update.len(), 0.0);
            for (v, r) in out.values.iter_mut().zip(res.iter_mut()) {
                *v += *r;
                *r = 0.0;
            }
        }
    }

    fn clone_box(&self) -> Box<dyn Compressor> {
        Box::new(*self)
    }
}

/// Absmax int8 quantization with stochastic rounding: ~8× smaller than
/// dense f64, unbiased in expectation, deterministic per stream seed.
#[derive(Debug, Clone, Copy, Default)]
pub struct Int8Quantizer;

impl Compressor for Int8Quantizer {
    fn label(&self) -> &'static str {
        "int8_stochastic"
    }

    fn compress(
        &self,
        update: &[f64],
        seed: u64,
        residual: Option<&mut Vec<f64>>,
        out: &mut CompressedUpdate,
    ) {
        out.kind = Kind::Int8;
        out.dim = update.len();
        out.bytes.clear();
        // Error feedback: quantize the update plus whatever previous
        // rounds could not express, then store the new quantization error.
        let effective: &[f64] = match &residual {
            Some(res) if !res.is_empty() => {
                debug_assert_eq!(res.len(), update.len(), "residual dimension");
                out.scratch.clear();
                out.scratch
                    .extend(update.iter().zip(res.iter()).map(|(u, r)| u + r));
                &out.scratch
            }
            _ => update,
        };
        let max_abs = effective.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        // Round the scale through f32 — that is what the 4-byte wire
        // header carries, and decode must use the identical value.
        let scale = if max_abs > 0.0 {
            (max_abs / 127.0) as f32 as f64
        } else {
            0.0
        };
        out.scale = scale;
        for (d, &v) in effective.iter().enumerate() {
            let q = if scale == 0.0 {
                0i8
            } else {
                let x = v / scale;
                let lo = x.floor();
                let frac = x - lo;
                let up = unit(seed, d as u64) < frac;
                (lo as i32 + i32::from(up)).clamp(-127, 127) as i8
            };
            out.bytes.push(q);
        }
        if let Some(res) = residual {
            res.resize(update.len(), 0.0);
            for ((r, &e), &q) in res.iter_mut().zip(effective.iter()).zip(out.bytes.iter()) {
                *r = e - q as f64 * scale;
            }
        }
    }

    fn clone_box(&self) -> Box<dyn Compressor> {
        Box::new(*self)
    }
}

/// Top-k magnitude sparsification with error feedback: send the `k`
/// largest-magnitude entries exactly, carry everything else forward in
/// the residual. Ties break toward the lower index, so the kept set is
/// canonical.
#[derive(Debug, Clone, Copy)]
pub struct TopKSparsifier {
    /// Fraction of entries to keep (`0 < fraction <= 1`); at least one
    /// entry is always kept.
    pub fraction: f64,
}

impl TopKSparsifier {
    /// Keeps `fraction` of the update's entries.
    ///
    /// # Panics
    /// Panics if `fraction` is not in `(0, 1]`.
    pub fn new(fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "top-k fraction must be in (0, 1]"
        );
        TopKSparsifier { fraction }
    }

    fn k(&self, dim: usize) -> usize {
        ((dim as f64 * self.fraction).ceil() as usize).clamp(1, dim.max(1))
    }
}

impl Default for TopKSparsifier {
    fn default() -> Self {
        TopKSparsifier::new(0.1)
    }
}

impl Compressor for TopKSparsifier {
    fn label(&self) -> &'static str {
        "topk_error_feedback"
    }

    fn compress(
        &self,
        update: &[f64],
        _seed: u64,
        residual: Option<&mut Vec<f64>>,
        out: &mut CompressedUpdate,
    ) {
        out.kind = Kind::TopK;
        out.dim = update.len();
        out.indices.clear();
        out.values.clear();
        if update.is_empty() {
            if let Some(res) = residual {
                res.clear();
            }
            return;
        }
        // Effective signal = update + carried residual (exact f64 adds).
        out.scratch.clear();
        match &residual {
            Some(res) if !res.is_empty() => {
                debug_assert_eq!(res.len(), update.len(), "residual dimension");
                out.scratch
                    .extend(update.iter().zip(res.iter()).map(|(u, r)| u + r));
            }
            _ => out.scratch.extend_from_slice(update),
        }
        let k = self.k(update.len());
        out.indices.extend(0..update.len() as u32);
        let scratch = &out.scratch;
        if k < update.len() {
            out.indices.select_nth_unstable_by(k - 1, |&a, &b| {
                scratch[b as usize]
                    .abs()
                    .total_cmp(&scratch[a as usize].abs())
                    .then(a.cmp(&b))
            });
            out.indices.truncate(k);
        }
        out.indices.sort_unstable();
        out.values
            .extend(out.indices.iter().map(|&i| scratch[i as usize]));
        if let Some(res) = residual {
            // Residual = effective signal minus what was sent: exact,
            // because sent entries are copied verbatim and zeroed here.
            res.clear();
            res.extend_from_slice(&out.scratch);
            for &i in &out.indices {
                res[i as usize] = 0.0;
            }
        }
    }

    fn clone_box(&self) -> Box<dyn Compressor> {
        Box::new(*self)
    }
}

/// A uniform draw in `[0, 1)`, pure in `(seed, lane)` — the stochastic
/// rounding coin.
fn unit(seed: u64, lane: u64) -> f64 {
    let mut h = seed ^ lane.wrapping_mul(0x2545_F491_4F6C_DD1D);
    h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(seed: u64, dim: usize) -> Vec<f64> {
        (0..dim).map(|d| unit(seed, d as u64) * 2.0 - 1.0).collect()
    }

    #[test]
    fn int8_error_bounded_by_scale() {
        let update = synth(3, 64);
        let mut out = CompressedUpdate::new();
        Int8Quantizer.compress(&update, 99, None, &mut out);
        assert_eq!(out.wire_bytes(), 4 + 64);
        assert_eq!(out.raw_bytes(), 8 * 64);
        let mut decoded = Vec::new();
        out.decode_into(&mut decoded);
        let max_abs = update.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let scale = (max_abs / 127.0) as f32 as f64;
        for (u, d) in update.iter().zip(decoded.iter()) {
            assert!(
                (u - d).abs() <= scale + 1e-12,
                "per-entry error bounded by one quantization step"
            );
        }
    }

    #[test]
    fn int8_is_deterministic_per_seed() {
        let update = synth(5, 128);
        let (mut a, mut b, mut c) = (
            CompressedUpdate::new(),
            CompressedUpdate::new(),
            CompressedUpdate::new(),
        );
        Int8Quantizer.compress(&update, 7, None, &mut a);
        Int8Quantizer.compress(&update, 7, None, &mut b);
        Int8Quantizer.compress(&update, 8, None, &mut c);
        assert_eq!(a, b, "same stream seed, same bytes");
        assert_ne!(a.bytes, c.bytes, "different seed re-rolls the rounding");
    }

    #[test]
    fn topk_error_feedback_is_exact() {
        // Invariant: sent + residual' == update + residual, exactly.
        let mut residual: Vec<f64> = Vec::new();
        let mut out = CompressedUpdate::new();
        let sparser = TopKSparsifier::new(0.25);
        let mut carried_in: Vec<f64> = vec![0.0; 32];
        for round in 0..5u64 {
            let update = synth(round * 31 + 1, 32);
            let effective: Vec<f64> = update
                .iter()
                .zip(carried_in.iter())
                .map(|(u, r)| u + r)
                .collect();
            sparser.compress(&update, round, Some(&mut residual), &mut out);
            let mut sent = Vec::new();
            out.decode_into(&mut sent);
            for ((s, r), e) in sent.iter().zip(residual.iter()).zip(effective.iter()) {
                assert_eq!(
                    (s + r).to_bits(),
                    e.to_bits(),
                    "error feedback must conserve the signal exactly"
                );
            }
            carried_in.clone_from(&residual);
        }
        assert_eq!(out.carried(), 8, "25% of 32 entries kept");
        assert_eq!(out.wire_bytes(), 4 + 12 * 8);
    }

    #[test]
    fn topk_keeps_the_largest_magnitudes() {
        let mut update = vec![0.01; 16];
        update[3] = -5.0;
        update[11] = 4.0;
        let mut out = CompressedUpdate::new();
        TopKSparsifier::new(2.0 / 16.0).compress(&update, 0, None, &mut out);
        assert_eq!(out.indices, vec![3, 11]);
        let mut decoded = Vec::new();
        out.decode_into(&mut decoded);
        assert_eq!(decoded[3], -5.0);
        assert_eq!(decoded[11], 4.0);
        assert!(decoded
            .iter()
            .enumerate()
            .all(|(i, &v)| v == 0.0 || i == 3 || i == 11));
    }

    #[test]
    fn residual_bounded_under_repeated_topk() {
        // With a contractive signal the residual cannot grow without
        // bound: each round sends the largest entries, so the carried
        // error stays within a small multiple of the per-round update.
        let sparser = TopKSparsifier::new(0.25);
        let mut residual = Vec::new();
        let mut out = CompressedUpdate::new();
        let mut max_norm = 0.0f64;
        for round in 0..50u64 {
            let update = synth(round + 100, 40);
            sparser.compress(&update, round, Some(&mut residual), &mut out);
            let norm = residual.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            max_norm = max_norm.max(norm);
        }
        assert!(
            max_norm < 10.0,
            "residual must stay bounded, got max |r| = {max_norm}"
        );
    }

    #[test]
    fn dense_flushes_residual() {
        let update = vec![1.0, 2.0];
        let mut residual = vec![0.5, -0.25];
        let mut out = CompressedUpdate::new();
        NoCompression.compress(&update, 0, Some(&mut residual), &mut out);
        let mut decoded = Vec::new();
        out.decode_into(&mut decoded);
        assert_eq!(decoded, vec![1.5, 1.75]);
        assert!(residual.iter().all(|&r| r == 0.0));
        assert_eq!(out.wire_bytes(), out.raw_bytes());
    }

    #[test]
    fn zero_update_compresses_to_zero() {
        let update = vec![0.0; 8];
        let mut out = CompressedUpdate::new();
        Int8Quantizer.compress(&update, 1, None, &mut out);
        let mut decoded = Vec::new();
        out.decode_into(&mut decoded);
        assert_eq!(decoded, update);
    }
}
