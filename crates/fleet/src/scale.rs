//! Million-client scale simulation: hierarchical sharded FedAvg over a
//! registry of lightweight clients.
//!
//! [`crate::sim::FleetSimulation`] runs *real* clients — live models, SGD
//! steps, device simulators — which tops out around thousands. This
//! module is the other end of the telescope: each client is a compact
//! [`ClientStat`] record (~24 bytes), its per-round behaviour (faults,
//! retries, energy, synthetic update) is a pure function of
//! `(seed, round, id)`, and the server work is the real thing — the same
//! [`ShardPlan`]/[`UpdateAccumulator`] reduction, the same [`FaultPlan`]
//! streams, the same [`Compressor`] uplink encodings as the small-scale
//! engines. That makes a 1M-client × 100-round run a seconds-scale
//! workload while every scaling claim (shard invariance, bytes on wire,
//! per-shard quorum accounting) is exercised for real.
//!
//! # Determinism contract
//!
//! The [`ScaleReport`]'s trace and final model depend **only** on the
//! configuration — not on worker count (results land in per-shard slots,
//! merged canonically) and not on shard count (fixed-point folds are
//! order-free; every trace field is an integer sum over *clients*, or the
//! hash of the model those sums produce). The per-shard breakdown
//! (`shard_stats`) naturally differs between plans and is exported as a
//! separate diagnostic artifact.

use std::collections::HashMap;
use std::path::Path;

use crate::compress::{CompressedUpdate, Compressor, Int8Quantizer};
use crate::fault::{stream_seed, ChurnStatus, FaultPlan};
use crate::generator::DeviceKind;
use crate::metrics::write_atomic;
use crate::sampler::{ClientSampler, ClientStat, UniformSampler};
use crate::shard::{drain_tasks, ShardPlan, ShardRoundStats, UpdateAccumulator};

/// Salt for the synthetic-update stream.
const UPDATE_SALT: u64 = 0x0B5E_55ED_0DA7_A5A1;
/// Salt for the uplink-compression stream.
const COMPRESS_SALT: u64 = 0xC0_4B_1E_55_ED_B1_75;
/// Salt for the loss-evolution stream.
const LOSS_SALT: u64 = 0x10_55_DE_CA_ED_05;

/// Configuration of a scale simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleConfig {
    /// Registered fleet size (clients the sampler chooses from).
    pub fleet_size: usize,
    /// Cohort size per round.
    pub cohort: usize,
    /// Number of rounds.
    pub rounds: usize,
    /// Model dimensionality.
    pub dim: usize,
    /// Master seed: fully determines the run.
    pub seed: u64,
    /// How the cohort is partitioned into aggregator shards.
    pub shard_plan: ShardPlan,
    /// Worker threads reducing the shards (any count, same output).
    pub workers: usize,
    /// Per-shard quorum fraction (`ceil(members × fraction)` updates per
    /// shard, `0.0` disables shard quorums). Accounting only — shortfalls
    /// are recorded, never used to discard arrived work.
    pub shard_quorum_fraction: f64,
    /// Fraction of the fleet on AGX-class boards (the rest TX2-class).
    pub agx_fraction: f64,
    /// Upload attempts per client before the update counts as lost.
    pub max_upload_attempts: u32,
    /// A straggler misses the round deadline when its slowdown factor
    /// exceeds this headroom.
    pub deadline_headroom: f64,
    /// Keep per-client error-feedback residuals across rounds (costs
    /// `O(participants × dim)` memory; off by default at the 1M scale).
    pub error_feedback: bool,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            fleet_size: 10_000,
            cohort: 512,
            rounds: 10,
            dim: 32,
            seed: 42,
            shard_plan: ShardPlan::with_shards(16),
            workers: 1,
            shard_quorum_fraction: 0.5,
            agx_fraction: 0.5,
            max_upload_attempts: 2,
            deadline_headroom: 2.0,
            error_feedback: false,
        }
    }
}

/// One registered client's immutable traits plus its evolving stats —
/// see [`ClientStat`] (the sampler-facing view is the whole record).
fn registry(config: &ScaleConfig) -> Vec<ClientStat> {
    (0..config.fleet_size)
        .map(|id| {
            let h = mix(config.seed ^ (id as u64).wrapping_mul(0xA076_1D64_78BD_642F));
            let kind = if unit_from(h) < config.agx_fraction {
                DeviceKind::JetsonAgx
            } else {
                DeviceKind::JetsonTx2
            };
            let h2 = mix(h ^ 0x9E37_79B9_7F4A_7C15);
            let h3 = mix(h2 ^ 0x2545_F491_4F6C_DD1D);
            ClientStat {
                id: id as u32,
                // Local dataset sizes spread 32..=256 (FedAvg weights).
                samples: 32 + (h2 % 225) as u32,
                // Unit-level spread of ±15% around the class baseline.
                energy_j_est: (kind.nominal_round_energy_j() * (0.85 + 0.30 * unit_from(h3)))
                    as f32,
                last_loss: (1.0 + 0.5 * unit_from(mix(h3 ^ 0xDEAD))) as f32,
                last_selected: u32::MAX,
                kind,
            }
        })
        .collect()
}

/// What happened to one cohort member this round (pure pre-pass result;
/// the parallel shard pass only consumes it).
#[derive(Debug, Clone, Copy, Default)]
struct MemberOutcome {
    aggregated: bool,
    dropped: bool,
    straggled: bool,
    missed_deadline: bool,
    upload_failed: bool,
    departed: bool,
    retries: u32,
    recovered: bool,
    energy_mj: u64,
    next_loss: f32,
}

/// A cohort member's slot for the parallel pass: identity, pre-drawn
/// outcome, and (with error feedback) its residual, temporarily moved
/// out of the registry map so shard workers get disjoint ownership.
struct Cell {
    id: u32,
    samples: u32,
    loss: f32,
    outcome: MemberOutcome,
    residual: Option<Vec<f64>>,
}

/// Per-shard reduction slot: accumulator + accounting, preallocated once
/// and reused every round.
#[derive(Default)]
struct ShardSlot {
    acc: UpdateAccumulator,
    stats: ShardRoundStats,
}

/// Per-worker scratch: synthetic update, wire encoding, decoded update.
#[derive(Default)]
struct WorkerScratch {
    update: Vec<f64>,
    decoded: Vec<f64>,
    wire: CompressedUpdate,
}

/// One row of the identity-checked trace. Every field is either an
/// integer sum over *clients* (grouping-free) or derived from the global
/// model those sums produce — nothing here can depend on the shard plan
/// or worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleRoundTrace {
    /// Round index.
    pub round: u32,
    /// Cohort members selected.
    pub selected: u32,
    /// Updates folded into the global model.
    pub aggregated: u32,
    /// Total FedAvg weight aggregated.
    pub weight: u64,
    /// Members lost to dropout.
    pub dropped: u32,
    /// Members that straggled.
    pub straggled: u32,
    /// Members whose slowdown blew the deadline.
    pub missed_deadline: u32,
    /// Members whose upload failed after all retries.
    pub upload_failed: u32,
    /// Extra upload attempts spent.
    pub retries: u32,
    /// Uploads saved by a retry.
    pub recovered: u32,
    /// Members that churned out mid-round.
    pub departed: u32,
    /// Cohort energy, millijoules.
    pub energy_mj: u64,
    /// Compressed bytes on the uplink.
    pub wire_bytes: u64,
    /// Bytes the same updates would cost uncompressed.
    pub raw_bytes: u64,
    /// FNV-1a hash of the global model's exact bits after this round.
    pub model_hash: u64,
}

impl ScaleRoundTrace {
    /// CSV header for the trace artifact.
    pub const CSV_HEADER: &'static str = "round,selected,aggregated,weight,dropped,straggled,\
missed_deadline,upload_failed,retries,recovered,departed,energy_mj,wire_bytes,raw_bytes,model_hash";

    /// One CSV row matching [`ScaleRoundTrace::CSV_HEADER`].
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:016x}",
            self.round,
            self.selected,
            self.aggregated,
            self.weight,
            self.dropped,
            self.straggled,
            self.missed_deadline,
            self.upload_failed,
            self.retries,
            self.recovered,
            self.departed,
            self.energy_mj,
            self.wire_bytes,
            self.raw_bytes,
            self.model_hash,
        )
    }

    /// One JSONL object matching the CSV row.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"round\":{},\"selected\":{},\"aggregated\":{},\"weight\":{},\"dropped\":{},\
\"straggled\":{},\"missed_deadline\":{},\"upload_failed\":{},\"retries\":{},\"recovered\":{},\
\"departed\":{},\"energy_mj\":{},\"wire_bytes\":{},\"raw_bytes\":{},\"model_hash\":\"{:016x}\"}}",
            self.round,
            self.selected,
            self.aggregated,
            self.weight,
            self.dropped,
            self.straggled,
            self.missed_deadline,
            self.upload_failed,
            self.retries,
            self.recovered,
            self.departed,
            self.energy_mj,
            self.wire_bytes,
            self.raw_bytes,
            self.model_hash,
        )
    }
}

/// The outcome of a scale run: the identity-checked trace, the per-shard
/// diagnostic breakdown, and the final global model.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleReport {
    /// Per-round identity trace (shard/worker-count invariant).
    pub trace: Vec<ScaleRoundTrace>,
    /// Per-shard accounting, all rounds flattened (plan-dependent).
    pub shard_stats: Vec<ShardRoundStats>,
    /// The final global model.
    pub final_model: Vec<f64>,
    /// Which sampler chose the cohorts.
    pub sampler: &'static str,
    /// Which compressor encoded the uplink.
    pub compressor: &'static str,
}

impl ScaleReport {
    /// FNV-1a hash over the final model's exact bits.
    pub fn model_hash(&self) -> u64 {
        hash_model(&self.final_model)
    }

    /// FNV-1a hash over the whole trace (every row's CSV form).
    pub fn trace_hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for row in &self.trace {
            for b in row.to_csv_row().bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        h
    }

    /// Total energy across the run, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.trace.iter().map(|r| r.energy_mj).sum::<u64>() as f64 / 1e3
    }

    /// Total compressed uplink traffic, bytes.
    pub fn wire_bytes(&self) -> u64 {
        self.trace.iter().map(|r| r.wire_bytes).sum()
    }

    /// Uplink traffic the run would have cost uncompressed, bytes.
    pub fn raw_bytes(&self) -> u64 {
        self.trace.iter().map(|r| r.raw_bytes).sum()
    }

    /// Raw-to-wire compression ratio (`1.0` when nothing was sent).
    pub fn compression_ratio(&self) -> f64 {
        let wire = self.wire_bytes();
        if wire == 0 {
            return 1.0;
        }
        self.raw_bytes() as f64 / wire as f64
    }

    /// Rounds in which at least one shard missed its local quorum.
    pub fn shard_shortfall_rounds(&self) -> usize {
        let mut rounds: Vec<u32> = self
            .shard_stats
            .iter()
            .filter(|s| s.shortfall > 0)
            .map(|s| s.round)
            .collect();
        rounds.dedup();
        rounds.len()
    }

    /// The trace as CSV.
    pub fn trace_csv(&self) -> String {
        let mut out = String::from(ScaleRoundTrace::CSV_HEADER);
        out.push('\n');
        for row in &self.trace {
            out.push_str(&row.to_csv_row());
            out.push('\n');
        }
        out
    }

    /// The trace as JSONL.
    pub fn trace_jsonl(&self) -> String {
        let mut out = String::new();
        for row in &self.trace {
            out.push_str(&row.to_json());
            out.push('\n');
        }
        out
    }

    /// The per-shard breakdown as CSV.
    pub fn shards_csv(&self) -> String {
        let mut out = String::from(ShardRoundStats::CSV_HEADER);
        out.push('\n');
        for row in &self.shard_stats {
            out.push_str(&row.to_csv_row());
            out.push('\n');
        }
        out
    }

    /// Writes `trace.csv`, `trace.jsonl` and `shards.csv` under `dir`
    /// (atomically, in the `results/` conventions).
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_artifacts(&self, dir: &Path) -> std::io::Result<()> {
        write_atomic(&dir.join("trace.csv"), &self.trace_csv())?;
        write_atomic(&dir.join("trace.jsonl"), &self.trace_jsonl())?;
        write_atomic(&dir.join("shards.csv"), &self.shards_csv())
    }
}

/// The scale simulation. Build with [`ScaleSimulation::builder`], run
/// with [`ScaleSimulation::run`].
pub struct ScaleSimulation {
    config: ScaleConfig,
    sampler: Box<dyn ClientSampler>,
    compressor: Box<dyn Compressor>,
    faults: FaultPlan,
    clients: Vec<ClientStat>,
    global: Vec<f64>,
    residuals: HashMap<u32, Vec<f64>>,
    // Reused per-round buffers — the steady-state round allocates
    // nothing beyond what the OS hands the worker threads.
    cohort: Vec<u32>,
    cells: Vec<Cell>,
    slots: Vec<ShardSlot>,
    root: UpdateAccumulator,
    avg: Vec<f64>,
}

impl std::fmt::Debug for ScaleSimulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScaleSimulation")
            .field("fleet", &self.config.fleet_size)
            .field("cohort", &self.config.cohort)
            .field("rounds", &self.config.rounds)
            .field("shards", &self.config.shard_plan.shards())
            .field("workers", &self.config.workers)
            .finish()
    }
}

/// Builder for a [`ScaleSimulation`].
pub struct ScaleSimulationBuilder {
    config: ScaleConfig,
    sampler: Box<dyn ClientSampler>,
    compressor: Box<dyn Compressor>,
    faults: FaultPlan,
}

impl std::fmt::Debug for ScaleSimulationBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScaleSimulationBuilder")
            .field("config", &self.config)
            .finish()
    }
}

impl ScaleSimulationBuilder {
    /// Sets the cohort-selection policy (defaults to [`UniformSampler`]).
    #[must_use]
    pub fn sampler(mut self, sampler: impl ClientSampler + 'static) -> Self {
        self.sampler = Box::new(sampler);
        self
    }

    /// Sets the uplink compressor (defaults to [`Int8Quantizer`]).
    #[must_use]
    pub fn compressor(mut self, compressor: impl Compressor + 'static) -> Self {
        self.compressor = Box::new(compressor);
        self
    }

    /// Sets the fault plan (defaults to a light dropout/straggler mix
    /// seeded from the master seed).
    #[must_use]
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Builds the simulation, materializing the client registry.
    pub fn build(self) -> ScaleSimulation {
        let config = self.config;
        let clients = registry(&config);
        let slots = (0..config.shard_plan.shard_count(config.cohort.max(1)))
            .map(|_| ShardSlot::default())
            .collect();
        ScaleSimulation {
            clients,
            global: initial_model(&config),
            residuals: HashMap::new(),
            cohort: Vec::with_capacity(config.cohort),
            cells: Vec::with_capacity(config.cohort),
            slots,
            root: UpdateAccumulator::new(),
            avg: Vec::with_capacity(config.dim),
            sampler: self.sampler,
            compressor: self.compressor,
            faults: self.faults,
            config,
        }
    }
}

impl ScaleSimulation {
    /// Starts building a scale simulation.
    pub fn builder(config: ScaleConfig) -> ScaleSimulationBuilder {
        ScaleSimulationBuilder {
            faults: FaultPlan::new(config.seed ^ 0xFA_17)
                .with_dropout(0.02)
                .with_stragglers(0.08, (1.2, 3.0))
                .with_upload_failures(0.03),
            config,
            sampler: Box::new(UniformSampler),
            compressor: Box::new(Int8Quantizer),
        }
    }

    /// The registered fleet (id order).
    pub fn clients(&self) -> &[ClientStat] {
        &self.clients
    }

    /// Runs all configured rounds and returns the report.
    pub fn run(&mut self) -> ScaleReport {
        let mut trace = Vec::with_capacity(self.config.rounds);
        let mut shard_stats = Vec::new();
        for round in 0..self.config.rounds {
            trace.push(self.run_round(round, &mut shard_stats));
        }
        ScaleReport {
            trace,
            shard_stats,
            final_model: self.global.clone(),
            sampler: self.sampler.label(),
            compressor: self.compressor.label(),
        }
    }

    fn run_round(
        &mut self,
        round: usize,
        shard_stats: &mut Vec<ShardRoundStats>,
    ) -> ScaleRoundTrace {
        let cfg = self.config;

        // 1. Cohort selection over the registry (sorted by id).
        self.sampler
            .sample(&self.clients, cfg.cohort, round, cfg.seed, &mut self.cohort);

        // 2. Sequential pre-pass in id order: pure fault/retry/energy
        //    outcomes per member. Nothing here depends on shards or
        //    workers, so it fixes the round's ground truth once.
        self.cells.clear();
        for i in 0..self.cohort.len() {
            let id = self.cohort[i];
            let stat = self.clients[id as usize];
            let outcome = member_outcome(&cfg, &self.faults, round, &stat);
            let residual = if cfg.error_feedback && outcome.aggregated {
                Some(self.residuals.remove(&id).unwrap_or_default())
            } else {
                None
            };
            self.cells.push(Cell {
                id,
                samples: stat.samples,
                loss: stat.last_loss,
                outcome,
                residual,
            });
        }

        // 3. Parallel shard pass: each shard folds its contiguous member
        //    slice into its private fixed-point slot. Workers only ever
        //    touch their current task's slot + cells, so scheduling is
        //    invisible.
        let count = cfg.shard_plan.shard_count(self.cells.len());
        while self.slots.len() < count {
            self.slots.push(ShardSlot::default());
        }
        {
            let ranges = cfg.shard_plan.ranges(self.cells.len());
            let mut tasks: Vec<(usize, &mut ShardSlot, &mut [Cell])> = Vec::with_capacity(count);
            let total_cells = self.cells.len();
            let mut slots_rest: &mut [ShardSlot] = &mut self.slots[..count];
            let mut cells_rest: &mut [Cell] = &mut self.cells;
            let mut consumed = 0usize;
            for (shard, range) in ranges.iter().enumerate() {
                let (slot, rest) = slots_rest
                    .split_first_mut()
                    .expect("one slot per shard was preallocated");
                slots_rest = rest;
                let (chunk, rest) = cells_rest.split_at_mut(range.len());
                cells_rest = rest;
                consumed += range.len();
                tasks.push((shard, slot, chunk));
            }
            debug_assert_eq!(consumed, total_cells);

            let compressor = &*self.compressor;
            let faults_seed = cfg.seed;
            drain_tasks(
                cfg.workers,
                tasks,
                WorkerScratch::default,
                move |scratch, (shard, slot, cells)| {
                    slot.acc.reset(cfg.dim);
                    slot.stats = ShardRoundStats {
                        round: round as u32,
                        shard: shard as u32,
                        ..ShardRoundStats::default()
                    };
                    for cell in cells.iter_mut() {
                        tally(&mut slot.stats, &cell.outcome);
                        if !cell.outcome.aggregated {
                            continue;
                        }
                        synth_update(
                            faults_seed,
                            round,
                            cell.id,
                            cell.loss,
                            cfg.dim,
                            &mut scratch.update,
                        );
                        let wire_seed =
                            stream_seed(faults_seed, round, cell.id as usize, COMPRESS_SALT);
                        compressor.compress(
                            &scratch.update,
                            wire_seed,
                            cell.residual.as_mut(),
                            &mut scratch.wire,
                        );
                        slot.stats.wire_bytes += scratch.wire.wire_bytes();
                        slot.stats.raw_bytes += scratch.wire.raw_bytes();
                        scratch.wire.decode_into(&mut scratch.decoded);
                        slot.acc.fold(&scratch.decoded, cell.samples as u64);
                        slot.stats.aggregated += 1;
                        slot.stats.weight += cell.samples as u64;
                    }
                    // Shard-local quorum: a label for the operator, never
                    // a filter — identical philosophy to round quorums.
                    if cfg.shard_quorum_fraction > 0.0 && slot.stats.members > 0 {
                        let quorum =
                            (slot.stats.members as f64 * cfg.shard_quorum_fraction).ceil() as u32;
                        slot.stats.quorum = quorum;
                        slot.stats.shortfall = quorum.saturating_sub(slot.stats.aggregated);
                    }
                    slot.stats.checksum = slot.acc.checksum();
                },
            );
        }

        // 4. Root reduction in canonical shard order.
        self.root.reset(cfg.dim);
        let mut totals = ShardRoundStats::default();
        for slot in &self.slots[..count] {
            self.root.merge(&slot.acc);
            slot.stats.add_into(&mut totals);
            shard_stats.push(slot.stats);
        }
        if self.root.finish_into(&mut self.avg) {
            for (g, a) in self.global.iter_mut().zip(self.avg.iter()) {
                *g += a;
            }
        }

        // 5. Sequential post-pass: registry stats evolve, residuals go
        //    back to their owners.
        for cell in self.cells.iter_mut() {
            let stat = &mut self.clients[cell.id as usize];
            stat.last_selected = round as u32;
            if cell.outcome.aggregated {
                stat.last_loss = cell.outcome.next_loss;
            }
            if let Some(residual) = cell.residual.take() {
                self.residuals.insert(cell.id, residual);
            }
        }

        ScaleRoundTrace {
            round: round as u32,
            selected: self.cohort.len() as u32,
            aggregated: totals.aggregated,
            weight: totals.weight,
            dropped: totals.dropped,
            straggled: totals.straggled,
            missed_deadline: totals.missed_deadline,
            upload_failed: totals.upload_failed,
            retries: totals.retries,
            recovered: totals.recovered,
            departed: totals.departed,
            energy_mj: totals.energy_mj,
            wire_bytes: totals.wire_bytes,
            raw_bytes: totals.raw_bytes,
            model_hash: hash_model(&self.global),
        }
    }
}

/// The pure per-member outcome: faults, churn, retries, energy, loss
/// evolution — a function of `(config, fault plan, round, client)` only.
fn member_outcome(
    cfg: &ScaleConfig,
    faults: &FaultPlan,
    round: usize,
    stat: &ClientStat,
) -> MemberOutcome {
    let id = stat.id as usize;
    let mut out = MemberOutcome::default();
    let churn = faults.churn_status(round, id);
    if matches!(churn, ChurnStatus::Departing | ChurnStatus::Absent) {
        // A departing member burns half a round of energy before
        // vanishing; an absent one should not have been sampled, but is
        // accounted as departed rather than silently skipped.
        out.departed = true;
        out.energy_mj = (stat.energy_j_est as f64 * 500.0).round() as u64;
        out.next_loss = stat.last_loss;
        return out;
    }
    let draw = faults.draw(round, id);
    out.dropped = draw.dropped;
    out.straggled = draw.straggler_factor > 1.0;
    out.missed_deadline = draw.straggler_factor > cfg.deadline_headroom;
    // Energy scales with how long the device actually ran.
    let duration_factor = if draw.dropped {
        0.5
    } else {
        draw.straggler_factor.min(cfg.deadline_headroom)
    };
    out.energy_mj = (stat.energy_j_est as f64 * duration_factor * 1000.0).round() as u64;
    let trained = !draw.dropped && !out.missed_deadline;
    if trained {
        let mut attempt = 1u32;
        let mut failed = faults.upload_attempt_failed(round, id, attempt);
        while failed && attempt < cfg.max_upload_attempts {
            attempt += 1;
            failed = faults.upload_attempt_failed(round, id, attempt);
        }
        out.retries = attempt - 1;
        out.upload_failed = failed;
        out.recovered = !failed && attempt > 1;
        out.aggregated = !failed;
    }
    // Loss decays slowly on successful participation (pure draw).
    let u = unit_from(mix(stream_seed(cfg.seed, round, id, LOSS_SALT)));
    out.next_loss = (stat.last_loss * (0.96 + 0.03 * u) as f32).max(0.01);
    out
}

fn tally(stats: &mut ShardRoundStats, outcome: &MemberOutcome) {
    stats.members += 1;
    stats.dropped += u32::from(outcome.dropped);
    stats.straggled += u32::from(outcome.straggled);
    stats.missed_deadline += u32::from(outcome.missed_deadline);
    stats.upload_failed += u32::from(outcome.upload_failed);
    stats.retries += outcome.retries;
    stats.recovered += u32::from(outcome.recovered);
    stats.departed += u32::from(outcome.departed);
    stats.energy_mj += outcome.energy_mj;
}

/// The synthetic local update: a seeded pseudo-gradient whose magnitude
/// tracks the client's current loss (training on a lossier shard moves
/// the model more). Pure in `(seed, round, id, loss, dim)`.
fn synth_update(seed: u64, round: usize, id: u32, loss: f32, dim: usize, out: &mut Vec<f64>) {
    out.clear();
    let base = stream_seed(seed, round, id as usize, UPDATE_SALT);
    let amp = loss as f64 * 0.05;
    for d in 0..dim {
        let h = mix(base ^ (d as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        out.push(amp * (unit_from(h) * 2.0 - 1.0));
    }
}

/// The seeded initial global model.
fn initial_model(cfg: &ScaleConfig) -> Vec<f64> {
    (0..cfg.dim)
        .map(|d| {
            let h = mix(cfg.seed ^ 0x0061_0BA1 ^ (d as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
            unit_from(h) * 0.1 - 0.05
        })
        .collect()
}

/// FNV-1a over a model's exact f64 bits.
fn hash_model(model: &[f64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in model {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

/// splitmix64 finalizer.
fn mix(mut h: u64) -> u64 {
    h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// A uniform draw in `[0, 1)` from already-mixed bits.
fn unit_from(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::TopKSparsifier;
    use crate::sampler::EnergyAwareSampler;

    fn small_config() -> ScaleConfig {
        ScaleConfig {
            fleet_size: 2_000,
            cohort: 128,
            rounds: 6,
            dim: 16,
            seed: 7,
            shard_plan: ShardPlan::with_shards(8),
            workers: 2,
            ..ScaleConfig::default()
        }
    }

    #[test]
    fn scale_run_produces_complete_trace() {
        let mut sim = ScaleSimulation::builder(small_config()).build();
        let report = sim.run();
        assert_eq!(report.trace.len(), 6);
        for row in &report.trace {
            assert_eq!(row.selected, 128);
            assert!(row.aggregated > 0, "faults are light, updates must land");
            assert!(row.aggregated <= row.selected);
            assert!(row.energy_mj > 0);
            assert!(row.wire_bytes > 0);
            assert!(row.wire_bytes < row.raw_bytes, "int8 must shrink the wire");
        }
        assert_eq!(report.shard_stats.len(), 6 * 8);
        assert!(report.compression_ratio() > 5.0);
    }

    #[test]
    fn shard_and_worker_count_are_invisible() {
        let reference = {
            let mut sim = ScaleSimulation::builder(ScaleConfig {
                shard_plan: ShardPlan::flat(),
                workers: 1,
                ..small_config()
            })
            .build();
            sim.run()
        };
        for shards in [4usize, 16] {
            for workers in [1usize, 2, 8] {
                let mut sim = ScaleSimulation::builder(ScaleConfig {
                    shard_plan: ShardPlan::with_shards(shards),
                    workers,
                    ..small_config()
                })
                .build();
                let report = sim.run();
                assert_eq!(
                    report.trace, reference.trace,
                    "trace must not see shards={shards} workers={workers}"
                );
                assert_eq!(
                    report
                        .final_model
                        .iter()
                        .map(|v| v.to_bits())
                        .collect::<Vec<_>>(),
                    reference
                        .final_model
                        .iter()
                        .map(|v| v.to_bits())
                        .collect::<Vec<_>>(),
                    "model must be byte-identical at shards={shards} workers={workers}"
                );
            }
        }
    }

    #[test]
    fn error_feedback_residuals_persist_across_rounds() {
        let mut sim = ScaleSimulation::builder(ScaleConfig {
            error_feedback: true,
            ..small_config()
        })
        .compressor(TopKSparsifier::new(0.25))
        .build();
        let report = sim.run();
        assert!(
            !sim.residuals.is_empty(),
            "top-k with error feedback must carry residuals"
        );
        assert!(report.compression_ratio() > 2.0);
    }

    #[test]
    fn energy_aware_sampling_cuts_fleet_energy() {
        let uniform = {
            let mut sim = ScaleSimulation::builder(small_config()).build();
            sim.run().total_energy_j()
        };
        let aware = {
            let mut sim = ScaleSimulation::builder(small_config())
                .sampler(EnergyAwareSampler { alpha: 4.0 })
                .build();
            sim.run().total_energy_j()
        };
        assert!(
            aware < uniform * 0.9,
            "energy-aware sampling should save >10%: {aware:.0} vs {uniform:.0} J"
        );
    }

    #[test]
    fn shard_quorum_accounting_labels_but_never_discards() {
        let heavy = FaultPlan::new(3)
            .with_dropout(0.6)
            .with_upload_failures(0.3);
        let bare = {
            let mut sim = ScaleSimulation::builder(small_config())
                .faults(heavy)
                .build();
            sim.run()
        };
        assert!(
            bare.shard_stats.iter().any(|s| s.shortfall > 0),
            "60% dropout must starve some shard quorums"
        );
        // Every arrived update is still aggregated: per-round aggregated
        // counts equal the shard sums regardless of shortfalls.
        for row in &bare.trace {
            let shard_sum: u32 = bare
                .shard_stats
                .iter()
                .filter(|s| s.round == row.round)
                .map(|s| s.aggregated)
                .sum();
            assert_eq!(shard_sum, row.aggregated);
        }
    }

    #[test]
    fn csv_and_jsonl_artifacts_are_consistent() {
        let mut sim = ScaleSimulation::builder(ScaleConfig {
            rounds: 2,
            ..small_config()
        })
        .build();
        let report = sim.run();
        let csv = report.trace_csv();
        assert!(csv.starts_with(ScaleRoundTrace::CSV_HEADER));
        assert_eq!(csv.lines().count(), 3);
        let header_cols = ScaleRoundTrace::CSV_HEADER.split(',').count();
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), header_cols);
        }
        assert_eq!(report.trace_jsonl().lines().count(), 2);
        let shards_csv = report.shards_csv();
        assert!(shards_csv.starts_with(ShardRoundStats::CSV_HEADER));
    }

    #[test]
    fn seed_changes_the_run() {
        let a = ScaleSimulation::builder(small_config()).build().run();
        let b = ScaleSimulation::builder(ScaleConfig {
            seed: 8,
            ..small_config()
        })
        .build()
        .run();
        assert_ne!(a.trace, b.trace);
    }
}
