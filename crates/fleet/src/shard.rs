//! Aggregator shards: the fleet-side machinery of hierarchical FedAvg.
//!
//! `bofl-fl` owns the *math* ([`ShardPlan`], [`UpdateAccumulator`] —
//! re-exported here): contiguous cohort ranges folded into fixed-point
//! partial sums whose merge is order-free. This module owns the
//! *execution*: a deterministic work queue that hands each shard (its
//! member range plus its private accumulator slot) to the worker pool,
//! exactly the discipline [`crate::engine::FleetEngine`] uses for client
//! jobs — results land in per-shard slots, the root merges them in
//! canonical shard order, so worker count is invisible in the output.
//!
//! It also defines [`ShardRoundStats`], the per-shard accounting record:
//! every count is an integer, so *fleet-level* totals (summed in shard
//! order) are identical no matter how the cohort was partitioned — only
//! the per-shard breakdown itself depends on the plan, and that is
//! exported as a separate diagnostic artifact, never mixed into the
//! identity-checked trace.

use std::sync::Mutex;

pub use bofl_fl::aggregate::{aggregate_sharded, ShardPlan, UpdateAccumulator};

/// Per-shard, per-round accounting: membership, aggregation outcome,
/// faults, energy and wire traffic — all integers, so any grouping of
/// shards sums to the same fleet totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardRoundStats {
    /// Round index.
    pub round: u32,
    /// Shard index within the round's plan.
    pub shard: u32,
    /// Cohort members assigned to this shard.
    pub members: u32,
    /// Members whose updates were folded into the shard's partial sum.
    pub aggregated: u32,
    /// Total FedAvg weight (sample count) this shard accumulated.
    pub weight: u64,
    /// The shard-local quorum (`ceil(members × quorum_fraction)`).
    pub quorum: u32,
    /// How many updates short of the shard quorum this shard fell.
    pub shortfall: u32,
    /// Members lost to dropout.
    pub dropped: u32,
    /// Members that straggled (slowdown > 1).
    pub straggled: u32,
    /// Members that missed the round deadline outright.
    pub missed_deadline: u32,
    /// Members whose upload ultimately failed after all retries.
    pub upload_failed: u32,
    /// Extra upload attempts spent by this shard's members.
    pub retries: u32,
    /// Members whose upload succeeded only thanks to a retry.
    pub recovered: u32,
    /// Members that churned out mid-round.
    pub departed: u32,
    /// Energy this shard's members burned, millijoules.
    pub energy_mj: u64,
    /// Simulated bytes this shard put on the uplink (compressed).
    pub wire_bytes: u64,
    /// Bytes the same updates would have cost uncompressed.
    pub raw_bytes: u64,
    /// Fixed-point checksum of the shard's partial sum (diagnostics).
    pub checksum: u64,
}

impl ShardRoundStats {
    /// Adds this shard's integer counters into a fleet-level total
    /// (checksum and identity fields excluded — totals are grouping-free).
    pub fn add_into(&self, total: &mut ShardRoundStats) {
        total.members += self.members;
        total.aggregated += self.aggregated;
        total.weight += self.weight;
        total.shortfall += self.shortfall;
        total.dropped += self.dropped;
        total.straggled += self.straggled;
        total.missed_deadline += self.missed_deadline;
        total.upload_failed += self.upload_failed;
        total.retries += self.retries;
        total.recovered += self.recovered;
        total.departed += self.departed;
        total.energy_mj += self.energy_mj;
        total.wire_bytes += self.wire_bytes;
        total.raw_bytes += self.raw_bytes;
    }

    /// CSV header for the per-shard diagnostic artifact.
    pub const CSV_HEADER: &'static str = "round,shard,members,aggregated,weight,quorum,shortfall,\
dropped,straggled,missed_deadline,upload_failed,retries,recovered,departed,\
energy_mj,wire_bytes,raw_bytes,checksum";

    /// One CSV row matching [`ShardRoundStats::CSV_HEADER`].
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:016x}",
            self.round,
            self.shard,
            self.members,
            self.aggregated,
            self.weight,
            self.quorum,
            self.shortfall,
            self.dropped,
            self.straggled,
            self.missed_deadline,
            self.upload_failed,
            self.retries,
            self.recovered,
            self.departed,
            self.energy_mj,
            self.wire_bytes,
            self.raw_bytes,
            self.checksum,
        )
    }
}

/// Drains `tasks` across `workers` OS threads, giving each worker one
/// private scratch value built by `init`. Task results must land inside
/// the task itself (each task owns `&mut` access to its output slot), so
/// scheduling order cannot influence the outcome — the same discipline
/// as the fleet engine's job queue.
///
/// With `workers <= 1` (or a single task) everything runs inline on the
/// caller's thread: the parallel path is an optimization, never a
/// semantic fork.
pub fn drain_tasks<T, S>(
    workers: usize,
    tasks: Vec<T>,
    init: impl Fn() -> S + Sync,
    work: impl Fn(&mut S, T) + Sync,
) where
    T: Send,
{
    if workers <= 1 || tasks.len() <= 1 {
        let mut scratch = init();
        for task in tasks {
            work(&mut scratch, task);
        }
        return;
    }
    let queue = Mutex::new(tasks.into_iter());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut scratch = init();
                loop {
                    // Hold the lock only to pop; shard folding runs
                    // unlocked.
                    let task = { queue.lock().expect("queue poisoned").next() };
                    match task {
                        Some(task) => work(&mut scratch, task),
                        None => break,
                    }
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_tasks_runs_every_task_exactly_once() {
        for workers in [1usize, 2, 8] {
            let mut hits = vec![0u32; 100];
            let tasks: Vec<(usize, &mut u32)> = hits.iter_mut().enumerate().collect();
            drain_tasks(
                workers,
                tasks,
                || (),
                |(), (i, slot)| {
                    *slot += 1 + i as u32;
                },
            );
            assert!(
                hits.iter().enumerate().all(|(i, &h)| h == 1 + i as u32),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn shard_totals_are_grouping_free() {
        let stats: Vec<ShardRoundStats> = (0..16)
            .map(|s| ShardRoundStats {
                round: 1,
                shard: s,
                members: 10 + s,
                aggregated: 8 + s,
                weight: 100 * (s as u64 + 1),
                energy_mj: 5_000 + s as u64,
                wire_bytes: 64 * (s as u64 + 1),
                raw_bytes: 512 * (s as u64 + 1),
                ..ShardRoundStats::default()
            })
            .collect();
        let mut forward = ShardRoundStats::default();
        let mut backward = ShardRoundStats::default();
        for s in &stats {
            s.add_into(&mut forward);
        }
        for s in stats.iter().rev() {
            s.add_into(&mut backward);
        }
        assert_eq!(forward, backward);
        assert_eq!(forward.members, (0..16).map(|s| 10 + s).sum::<u32>());
    }

    #[test]
    fn csv_row_matches_header_width() {
        let cols = ShardRoundStats::CSV_HEADER.split(',').count();
        let row = ShardRoundStats::default().to_csv_row();
        assert_eq!(row.split(',').count(), cols);
    }
}
