//! Deterministic fault injection for fleet simulations.
//!
//! Real federated deployments lose clients mid-round (battery, churn),
//! see transient stragglers (thermal throttling, co-located load) and drop
//! uploads (cellular handoff). A [`FaultPlan`] models all three as
//! independent per-`(round, client)` events drawn from a dedicated seed,
//! so the exact same faults fire regardless of worker count or scheduling
//! order — a hard requirement of the fleet engine's determinism contract.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The shared stream-seed discipline: every deterministic draw in the
/// fault/chaos family derives its RNG seed from the same XOR mix of
/// `(seed, round, client)` plus a stream-distinguishing `salt` (0 for the
/// primary fault stream). Pure in its arguments, so any engine on any
/// thread agrees on every draw; exposed so sibling plans (chaos
/// transports, liveness jitter) extend the discipline instead of
/// inventing their own.
pub fn stream_seed(seed: u64, round: usize, client_id: usize, salt: u64) -> u64 {
    seed ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (client_id as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ salt
}

/// The faults injected into one client's round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultDraw {
    /// The client vanished mid-round; its update is never received.
    pub dropped: bool,
    /// Duration multiplier for a transient slowdown (`1.0` = healthy).
    pub straggler_factor: f64,
    /// Training finished but the upload was lost.
    pub upload_failed: bool,
}

impl FaultDraw {
    /// A draw with no faults.
    pub fn healthy() -> Self {
        FaultDraw {
            dropped: false,
            straggler_factor: 1.0,
            upload_failed: false,
        }
    }
}

/// A client's churn standing in one round, derived from the plan's
/// departure draws (pure in `(round, client)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnStatus {
    /// In the fleet, as usual.
    Present,
    /// In the fleet at round start but leaving mid-round: any update it
    /// was producing is lost, and it is absent from the next round on.
    Departing,
    /// Out of the fleet entirely (not selectable, trains nothing).
    Absent,
    /// Rejoining the fleet this round after an absence.
    Arriving,
}

impl ChurnStatus {
    /// Whether the client participates in this round at all.
    pub fn is_present(&self) -> bool {
        !matches!(self, ChurnStatus::Absent)
    }
}

/// Probabilities and magnitudes of injected faults, plus the seed that
/// makes every draw a pure function of `(round, client)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    dropout_probability: f64,
    straggler_probability: f64,
    straggler_slowdown: (f64, f64),
    upload_failure_probability: f64,
    churn_departure_probability: f64,
    churn_absence_rounds: usize,
}

impl FaultPlan {
    /// A plan that injects nothing (the default for healthy fleets).
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            dropout_probability: 0.0,
            straggler_probability: 0.0,
            straggler_slowdown: (1.0, 1.0),
            upload_failure_probability: 0.0,
            churn_departure_probability: 0.0,
            churn_absence_rounds: 0,
        }
    }

    /// Starts a plan with the given fault seed and no faults enabled.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::none()
        }
    }

    /// Sets the per-round client dropout probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn with_dropout(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.dropout_probability = p;
        self
    }

    /// Sets the transient-straggler probability and the slowdown range
    /// `[lo, hi]` a straggling round's duration is multiplied by.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or the range is not `1 ≤ lo ≤ hi`.
    #[must_use]
    pub fn with_stragglers(mut self, p: f64, slowdown: (f64, f64)) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        assert!(
            1.0 <= slowdown.0 && slowdown.0 <= slowdown.1 && slowdown.1.is_finite(),
            "slowdown range must satisfy 1 <= lo <= hi"
        );
        self.straggler_probability = p;
        self.straggler_slowdown = slowdown;
        self
    }

    /// Sets the probability that a completed round's upload is lost.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn with_upload_failures(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.upload_failure_probability = p;
        self
    }

    /// Enables client churn: each round a present client departs with
    /// probability `p`, stays away for `absence_rounds` further rounds,
    /// and then rejoins. Departures happen *mid-round* — a selected
    /// client that departs still burns energy but its update is lost.
    /// Only event-driven engines act on churn; the barrier engines have
    /// no way to express a client that is simply not there.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn with_churn(mut self, p: f64, absence_rounds: usize) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.churn_departure_probability = p;
        self.churn_absence_rounds = absence_rounds;
        self
    }

    /// Whether this plan can ever churn a client in or out.
    pub fn has_churn(&self) -> bool {
        self.churn_departure_probability > 0.0
    }

    /// Whether this plan can ever inject a fault.
    pub fn is_none(&self) -> bool {
        self.dropout_probability == 0.0
            && self.straggler_probability == 0.0
            && self.upload_failure_probability == 0.0
    }

    /// The raw churn-departure draw for `(round, client)` — whether a
    /// client that is present in `round` decides to leave during it.
    /// Pure in its arguments; uses a stream independent of
    /// [`FaultPlan::draw`] so enabling churn never re-rolls the other
    /// faults.
    fn departure_draw(&self, round: usize, client_id: usize) -> bool {
        if self.churn_departure_probability == 0.0 {
            return false;
        }
        let mut rng = StdRng::seed_from_u64(stream_seed(
            self.seed,
            round,
            client_id,
            0xC0_FF_EE_15_BA_D5_EE_D5,
        ));
        rng.gen::<f64>() < self.churn_departure_probability
    }

    /// The client's churn standing in `round`, replaying the departure
    /// draws from round 0 — a pure function of `(round, client)`, so every
    /// engine and worker count agrees on who is in the fleet when.
    pub fn churn_status(&self, round: usize, client_id: usize) -> ChurnStatus {
        if !self.has_churn() {
            return ChurnStatus::Present;
        }
        // First round the client is present again after its last departure
        // (0 = never departed).
        let mut absent_until = 0usize;
        for r in 0..=round {
            if r < absent_until {
                if r == round {
                    return ChurnStatus::Absent;
                }
                continue;
            }
            let arrived = absent_until != 0 && r == absent_until;
            if self.departure_draw(r, client_id) {
                if r == round {
                    return ChurnStatus::Departing;
                }
                absent_until = r + 1 + self.churn_absence_rounds;
            } else if r == round {
                return if arrived {
                    ChurnStatus::Arriving
                } else {
                    ChurnStatus::Present
                };
            }
        }
        unreachable!("the loop classifies `round` before exiting")
    }

    /// Draws the faults for one `(round, client)` pair. Pure: the same
    /// arguments always yield the same draw, on any thread.
    pub fn draw(&self, round: usize, client_id: usize) -> FaultDraw {
        if self.is_none() {
            return FaultDraw::healthy();
        }
        let mut rng = StdRng::seed_from_u64(stream_seed(self.seed, round, client_id, 0));
        let dropped = rng.gen::<f64>() < self.dropout_probability;
        let straggler = rng.gen::<f64>() < self.straggler_probability;
        let (lo, hi) = self.straggler_slowdown;
        let straggler_factor = if straggler {
            lo + (hi - lo) * rng.gen::<f64>()
        } else {
            1.0
        };
        let upload_failed = rng.gen::<f64>() < self.upload_failure_probability;
        FaultDraw {
            dropped,
            straggler_factor,
            upload_failed,
        }
    }

    /// Whether upload `attempt` (1-based) for this `(round, client)` pair
    /// fails. Attempt 1 is exactly [`FaultPlan::draw`]'s `upload_failed`
    /// — the retry machinery extends the original fault stream instead of
    /// re-rolling it, so enabling retries never changes which first
    /// attempts fail. Later attempts are independent draws at the same
    /// failure probability, pure in `(round, client, attempt)`.
    pub fn upload_attempt_failed(&self, round: usize, client_id: usize, attempt: u32) -> bool {
        assert!(attempt >= 1, "upload attempts are 1-based");
        if attempt == 1 {
            return self.draw(round, client_id).upload_failed;
        }
        if self.upload_failure_probability == 0.0 {
            return false;
        }
        let mut rng = StdRng::seed_from_u64(stream_seed(
            self.seed,
            round,
            client_id,
            (attempt as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93),
        ));
        rng.gen::<f64>() < self.upload_failure_probability
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_always_healthy() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        for round in 0..5 {
            for client in 0..5 {
                assert_eq!(plan.draw(round, client), FaultDraw::healthy());
            }
        }
    }

    #[test]
    fn draws_are_deterministic_per_round_and_client() {
        let plan = FaultPlan::new(7)
            .with_dropout(0.3)
            .with_stragglers(0.4, (1.5, 3.0))
            .with_upload_failures(0.2);
        let a = plan.draw(3, 11);
        let b = plan.draw(3, 11);
        assert_eq!(a, b);
        // Different coordinates give an independent draw stream.
        let other = plan.draw(4, 11);
        let another = plan.draw(3, 12);
        // (Not all need differ, but across a grid *some* must.)
        let grid: Vec<FaultDraw> = (0..20).map(|c| plan.draw(0, c)).collect();
        assert!(grid.iter().any(|d| d.dropped) && grid.iter().any(|d| !d.dropped));
        let _ = (other, another);
    }

    #[test]
    fn certain_dropout_always_drops() {
        let plan = FaultPlan::new(1).with_dropout(1.0);
        assert!((0..50).all(|c| plan.draw(0, c).dropped));
    }

    #[test]
    fn straggler_factor_stays_in_range() {
        let plan = FaultPlan::new(2).with_stragglers(1.0, (2.0, 4.0));
        for c in 0..50 {
            let f = plan.draw(0, c).straggler_factor;
            assert!((2.0..=4.0).contains(&f), "factor {f} out of range");
        }
    }

    #[test]
    fn upload_attempts_extend_the_fault_stream() {
        let plan = FaultPlan::new(11).with_upload_failures(0.5);
        for client in 0..20 {
            // Attempt 1 must agree with the original draw, so turning on
            // retries cannot change which first attempts fail.
            assert_eq!(
                plan.upload_attempt_failed(0, client, 1),
                plan.draw(0, client).upload_failed
            );
            // Later attempts are pure in (round, client, attempt).
            assert_eq!(
                plan.upload_attempt_failed(0, client, 2),
                plan.upload_attempt_failed(0, client, 2)
            );
        }
        // At p = 0.5 some second attempts must succeed and some fail.
        let seconds: Vec<bool> = (0..40)
            .map(|c| plan.upload_attempt_failed(0, c, 2))
            .collect();
        assert!(seconds.iter().any(|&f| f) && seconds.iter().any(|&f| !f));
        // A plan without upload faults never fails a retry either.
        assert!(!FaultPlan::none().upload_attempt_failed(0, 0, 3));
    }

    #[test]
    #[should_panic(expected = "upload attempts are 1-based")]
    fn rejects_zeroth_upload_attempt() {
        let _ = FaultPlan::new(0).upload_attempt_failed(0, 0, 0);
    }

    #[test]
    #[should_panic(expected = "probability must be in [0, 1]")]
    fn rejects_bad_probability() {
        let _ = FaultPlan::new(0).with_dropout(1.5);
    }

    #[test]
    fn churnless_plans_keep_everyone_present() {
        let plan = FaultPlan::new(3).with_dropout(0.5);
        assert!(!plan.has_churn());
        for round in 0..6 {
            for client in 0..6 {
                assert_eq!(plan.churn_status(round, client), ChurnStatus::Present);
            }
        }
    }

    #[test]
    fn certain_churn_cycles_depart_absent_arrive() {
        // p = 1: depart in round 0, sit out rounds 1–2, and depart again
        // the moment the client is back (arrival and departure can
        // coincide; the departure wins the classification).
        let plan = FaultPlan::new(4).with_churn(1.0, 2);
        assert_eq!(plan.churn_status(0, 7), ChurnStatus::Departing);
        assert_eq!(plan.churn_status(1, 7), ChurnStatus::Absent);
        assert_eq!(plan.churn_status(2, 7), ChurnStatus::Absent);
        assert_eq!(plan.churn_status(3, 7), ChurnStatus::Departing);
        assert!(!ChurnStatus::Absent.is_present());
        assert!(ChurnStatus::Departing.is_present());
    }

    #[test]
    fn churn_statuses_are_deterministic_and_mixed() {
        let plan = FaultPlan::new(11).with_churn(0.3, 1);
        for round in 0..8 {
            for client in 0..10 {
                assert_eq!(
                    plan.churn_status(round, client),
                    plan.churn_status(round, client)
                );
            }
        }
        let statuses: Vec<ChurnStatus> = (0..30).map(|c| plan.churn_status(3, c)).collect();
        assert!(statuses.iter().any(|s| *s != ChurnStatus::Present));
        assert!(statuses.contains(&ChurnStatus::Present));
        // Enabling churn must not re-roll the classic fault draws.
        let base = FaultPlan::new(11).with_dropout(0.4);
        let churned = FaultPlan::new(11).with_dropout(0.4).with_churn(0.3, 1);
        for c in 0..20 {
            assert_eq!(base.draw(2, c), churned.draw(2, c));
        }
    }

    #[test]
    #[should_panic(expected = "slowdown range")]
    fn rejects_speedup_slowdown() {
        let _ = FaultPlan::new(0).with_stragglers(0.5, (0.5, 2.0));
    }
}
