//! Fleet-level metrics: per-round distributions over client outcomes,
//! deadline-miss/fault accounting, phase occupancy, and CSV export in the
//! same header-plus-rows shape as the repo's `results/` tables.

use bofl::Phase;
use bofl_fl::engine::ClientOutcome;
use bofl_fl::server::RoundRecord;
use std::fs;
use std::io;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Summary statistics of one per-client quantity within a round.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Distribution {
    /// Number of samples.
    pub count: usize,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    /// 95th-percentile sample (nearest-rank; 0 when empty).
    pub p95: f64,
}

impl Distribution {
    /// Summarizes `samples` (need not be sorted). NaN samples indicate a
    /// bug upstream — debug builds assert; release builds still produce a
    /// total order (`f64::total_cmp`) instead of panicking mid-run.
    pub fn of(samples: &[f64]) -> Self {
        debug_assert!(
            samples.iter().all(|s| s.is_finite()),
            "distribution samples must be finite"
        );
        if samples.is_empty() {
            return Distribution::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = ((0.95 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Distribution {
            count: sorted.len(),
            sum: sorted.iter().sum(),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            p95: sorted[rank - 1],
        }
    }

    /// Mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Everything the fleet aggregator distills out of one round.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRoundStats {
    /// Zero-based round index.
    pub round: usize,
    /// Clients selected this round.
    pub selected: usize,
    /// Updates actually aggregated.
    pub aggregated: usize,
    /// The server's training deadline, seconds.
    pub deadline_s: f64,
    /// Per-client round energy, joules.
    pub energy_j: Distribution,
    /// Per-client round duration, seconds.
    pub latency_s: Distribution,
    /// Fraction of selected clients that missed their deadline.
    pub deadline_miss_rate: f64,
    /// Clients lost to dropout (server- or fault-injected).
    pub dropouts: usize,
    /// Clients whose upload was lost after training.
    pub upload_failures: usize,
    /// Clients that ran with a straggler slowdown (factor > 1).
    pub stragglers: usize,
    /// The aggregation policy's quorum for this round (`0` = disabled).
    pub quorum: usize,
    /// Updates short of the quorum (`0` = met or disabled).
    pub quorum_shortfall: usize,
    /// Upload retries attempted beyond each client's first try.
    pub upload_retries: usize,
    /// Uploads that failed first but got through on a retry.
    pub recovered_uploads: usize,
    /// Jobs the clients' deadline guardians escalated to `x_max`
    /// mid-round.
    pub escalated_jobs: u64,
    /// Latency observations the clients' controllers quarantined as
    /// contaminated.
    pub quarantined: u64,
    /// Clients that rejoined the fleet this round (churn). Derived from
    /// the control plane's event journal; barrier engines leave it 0.
    pub churn_arrivals: usize,
    /// Clients that left the fleet this round (churn), mid-round or
    /// between rounds. Journal-derived; barrier engines leave it 0.
    pub churn_departures: usize,
    /// Updates the chaos transport dropped on the wire this round.
    /// Annotated from the transport's wire stats; engines without a chaos
    /// transport leave all chaos columns 0.
    pub chaos_dropped: usize,
    /// Updates the chaos transport delayed beyond their send time.
    pub chaos_delayed: usize,
    /// Duplicate copies the chaos transport injected.
    pub chaos_duplicated: usize,
    /// Deliveries that arrived out of send order after chaos jitter.
    pub chaos_reordered: usize,
    /// Updates held back by an unhealed network partition at send time.
    pub chaos_partition_held: usize,
    /// Clients the liveness tracker suspected this round (heartbeat
    /// deadline lapsed). Journal-derived; 0 without a liveness policy.
    pub suspected: usize,
    /// Suspected clients that stayed silent past expiry and were declared
    /// dead for the round.
    pub expired: usize,
    /// Suspected clients whose update arrived after all (healed).
    pub healed: usize,
    /// Aggregator shards the round ran with (0 = no shard plan armed).
    /// Annotated from the control plane's round-close records.
    pub shards: usize,
    /// Shards that closed below their local quorum this round.
    pub shard_shortfalls: usize,
    /// Bytes the round's accepted-and-failed uploads put on the wire
    /// after compression (0 when no compressor is armed). Annotated from
    /// the transport's wire statistics.
    pub wire_bytes: u64,
    /// Bytes the same uploads would have occupied uncompressed.
    pub wire_raw_bytes: u64,
    /// Clients per controller phase:
    /// `[none, random exploration, pareto construction, exploitation]`.
    pub phase_counts: [usize; 4],
    /// Per-client MBO `suggest` wall time this round, milliseconds
    /// (all-zero for baselines and rounds that did not re-plan).
    pub suggest_ms: Distribution,
    /// Global-model test accuracy after the round.
    pub test_accuracy: f64,
}

impl FleetRoundStats {
    /// Distills a round's record and outcomes.
    pub fn from_round(record: &RoundRecord, outcomes: &[ClientOutcome]) -> Self {
        let energies: Vec<f64> = outcomes.iter().map(|o| o.result.energy_j).collect();
        let latencies: Vec<f64> = outcomes.iter().map(|o| o.result.duration_s).collect();
        let misses = outcomes.iter().filter(|o| o.missed_deadline()).count();
        let mut phase_counts = [0usize; 4];
        for o in outcomes {
            let slot = match o.result.phase {
                None => 0,
                Some(Phase::RandomExploration) => 1,
                Some(Phase::ParetoConstruction) => 2,
                Some(Phase::Exploitation) => 3,
            };
            phase_counts[slot] += 1;
        }
        FleetRoundStats {
            round: record.round,
            selected: record.selected.len(),
            aggregated: record.aggregated.len(),
            deadline_s: record.deadline_s,
            energy_j: Distribution::of(&energies),
            latency_s: Distribution::of(&latencies),
            deadline_miss_rate: if outcomes.is_empty() {
                0.0
            } else {
                misses as f64 / outcomes.len() as f64
            },
            dropouts: outcomes.iter().filter(|o| o.dropped).count(),
            upload_failures: outcomes.iter().filter(|o| o.upload_failed).count(),
            stragglers: outcomes.iter().filter(|o| o.straggler_factor > 1.0).count(),
            quorum: record.quorum,
            quorum_shortfall: record.quorum_shortfall,
            upload_retries: outcomes
                .iter()
                .map(|o| o.upload_attempts.saturating_sub(1) as usize)
                .sum(),
            recovered_uploads: outcomes.iter().filter(|o| o.recovered_upload()).count(),
            escalated_jobs: outcomes.iter().map(|o| o.result.escalated_jobs).sum(),
            quarantined: outcomes.iter().map(|o| o.result.quarantined).sum(),
            churn_arrivals: 0,
            churn_departures: 0,
            chaos_dropped: 0,
            chaos_delayed: 0,
            chaos_duplicated: 0,
            chaos_reordered: 0,
            chaos_partition_held: 0,
            suspected: 0,
            expired: 0,
            healed: 0,
            shards: 0,
            shard_shortfalls: 0,
            wire_bytes: 0,
            wire_raw_bytes: 0,
            phase_counts,
            suggest_ms: Distribution::of(
                &outcomes
                    .iter()
                    .map(|o| o.result.suggest_ms)
                    .collect::<Vec<f64>>(),
            ),
            test_accuracy: record.test_accuracy,
        }
    }
}

/// Accumulates per-round fleet statistics over a run and renders them as
/// CSV (one row per round, same conventions as `results/*.csv`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FleetMetrics {
    rounds: Vec<FleetRoundStats>,
}

impl FleetMetrics {
    /// An empty aggregator.
    pub fn new() -> Self {
        FleetMetrics::default()
    }

    /// Records one round.
    pub fn record(&mut self, record: &RoundRecord, outcomes: &[ClientOutcome]) {
        self.rounds
            .push(FleetRoundStats::from_round(record, outcomes));
    }

    /// The per-round statistics recorded so far.
    pub fn rounds(&self) -> &[FleetRoundStats] {
        &self.rounds
    }

    /// Total fleet energy across recorded rounds, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.rounds.iter().map(|r| r.energy_j.sum).sum()
    }

    /// Mean deadline-miss rate across recorded rounds.
    pub fn mean_miss_rate(&self) -> f64 {
        if self.rounds.is_empty() {
            return 0.0;
        }
        self.rounds
            .iter()
            .map(|r| r.deadline_miss_rate)
            .sum::<f64>()
            / self.rounds.len() as f64
    }

    /// Rounds that produced zero aggregated updates — every joule spent
    /// for no global-model progress (the failure mode the recovery layer
    /// exists to prevent).
    pub fn wasted_rounds(&self) -> usize {
        self.rounds.iter().filter(|r| r.aggregated == 0).count()
    }

    /// Mean aggregated updates per recorded round.
    pub fn mean_aggregated_per_round(&self) -> f64 {
        if self.rounds.is_empty() {
            return 0.0;
        }
        self.rounds.iter().map(|r| r.aggregated).sum::<usize>() as f64 / self.rounds.len() as f64
    }

    /// Rounds that fell short of their aggregation quorum.
    pub fn quorum_shortfall_rounds(&self) -> usize {
        self.rounds
            .iter()
            .filter(|r| r.quorum_shortfall > 0)
            .count()
    }

    /// Total uploads recovered by retries across the run.
    pub fn recovered_uploads(&self) -> usize {
        self.rounds.iter().map(|r| r.recovered_uploads).sum()
    }

    /// Total jobs escalated to `x_max` by mid-round guardians.
    pub fn escalated_jobs(&self) -> u64 {
        self.rounds.iter().map(|r| r.escalated_jobs).sum()
    }

    /// Annotates an already-recorded round with journal-derived churn
    /// counts (the engine only reports outcomes; arrivals/departures live
    /// in the control plane's event journal). No-op if the round was
    /// never recorded.
    pub fn annotate_churn(&mut self, round: usize, arrivals: usize, departures: usize) {
        if let Some(stats) = self.rounds.iter_mut().find(|r| r.round == round) {
            stats.churn_arrivals = arrivals;
            stats.churn_departures = departures;
        }
    }

    /// Total churn arrivals across recorded rounds.
    pub fn churn_arrivals(&self) -> usize {
        self.rounds.iter().map(|r| r.churn_arrivals).sum()
    }

    /// Total churn departures across recorded rounds.
    pub fn churn_departures(&self) -> usize {
        self.rounds.iter().map(|r| r.churn_departures).sum()
    }

    /// Annotates an already-recorded round with the chaos transport's
    /// wire statistics. No-op if the round was never recorded.
    #[allow(clippy::too_many_arguments)]
    pub fn annotate_chaos(
        &mut self,
        round: usize,
        dropped: usize,
        delayed: usize,
        duplicated: usize,
        reordered: usize,
        partition_held: usize,
    ) {
        if let Some(stats) = self.rounds.iter_mut().find(|r| r.round == round) {
            stats.chaos_dropped = dropped;
            stats.chaos_delayed = delayed;
            stats.chaos_duplicated = duplicated;
            stats.chaos_reordered = reordered;
            stats.chaos_partition_held = partition_held;
        }
    }

    /// Annotates an already-recorded round with journal-derived liveness
    /// counts. No-op if the round was never recorded.
    pub fn annotate_liveness(
        &mut self,
        round: usize,
        suspected: usize,
        expired: usize,
        healed: usize,
    ) {
        if let Some(stats) = self.rounds.iter_mut().find(|r| r.round == round) {
            stats.suspected = suspected;
            stats.expired = expired;
            stats.healed = healed;
        }
    }

    /// Annotates an already-recorded round with its shard-plan
    /// bookkeeping from the control plane's round-close record. No-op if
    /// the round was never recorded.
    pub fn annotate_shards(&mut self, round: usize, shards: usize, shard_shortfalls: usize) {
        if let Some(stats) = self.rounds.iter_mut().find(|r| r.round == round) {
            stats.shards = shards;
            stats.shard_shortfalls = shard_shortfalls;
        }
    }

    /// Annotates an already-recorded round with the uplink's byte
    /// accounting from the transport's wire statistics. No-op if the
    /// round was never recorded.
    pub fn annotate_wire_bytes(&mut self, round: usize, wire_bytes: u64, wire_raw_bytes: u64) {
        if let Some(stats) = self.rounds.iter_mut().find(|r| r.round == round) {
            stats.wire_bytes = wire_bytes;
            stats.wire_raw_bytes = wire_raw_bytes;
        }
    }

    /// Rounds in which at least one shard closed below its local quorum.
    pub fn shard_shortfall_rounds(&self) -> usize {
        self.rounds
            .iter()
            .filter(|r| r.shard_shortfalls > 0)
            .count()
    }

    /// Total compressed uplink bytes across recorded rounds.
    pub fn wire_bytes(&self) -> u64 {
        self.rounds.iter().map(|r| r.wire_bytes).sum()
    }

    /// Total uncompressed-equivalent uplink bytes across recorded rounds.
    pub fn wire_raw_bytes(&self) -> u64 {
        self.rounds.iter().map(|r| r.wire_raw_bytes).sum()
    }

    /// Total updates lost on the wire across recorded rounds.
    pub fn chaos_dropped(&self) -> usize {
        self.rounds.iter().map(|r| r.chaos_dropped).sum()
    }

    /// Total liveness suspicions across recorded rounds.
    pub fn suspected(&self) -> usize {
        self.rounds.iter().map(|r| r.suspected).sum()
    }

    /// Total suspected-then-healed clients across recorded rounds.
    pub fn healed(&self) -> usize {
        self.rounds.iter().map(|r| r.healed).sum()
    }

    /// The CSV header this aggregator emits.
    pub const CSV_HEADER: &'static str = "round,selected,aggregated,deadline_s,\
energy_total_j,energy_mean_j,energy_p95_j,latency_mean_s,latency_p95_s,latency_max_s,\
miss_rate,dropouts,upload_failures,stragglers,\
quorum,quorum_shortfall,upload_retries,recovered_uploads,escalated_jobs,quarantined,\
churn_arrivals,churn_departures,\
chaos_dropped,chaos_delayed,chaos_duplicated,chaos_reordered,chaos_partition_held,\
suspected,expired,healed,\
shards,shard_shortfalls,wire_bytes,wire_raw_bytes,\
phase_none,phase_random,phase_pareto,phase_exploit,suggest_ms,test_accuracy";

    /// Renders all recorded rounds as CSV. Formatting is fixed-precision,
    /// so two runs with identical traces produce byte-identical files —
    /// the artifact the determinism acceptance check diffs.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(Self::CSV_HEADER);
        out.push('\n');
        for r in &self.rounds {
            out.push_str(&format!(
                "{},{},{},{:.6},{:.4},{:.4},{:.4},{:.6},{:.6},{:.6},{:.4},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.3},{:.4}\n",
                r.round,
                r.selected,
                r.aggregated,
                r.deadline_s,
                r.energy_j.sum,
                r.energy_j.mean(),
                r.energy_j.p95,
                r.latency_s.mean(),
                r.latency_s.p95,
                r.latency_s.max,
                r.deadline_miss_rate,
                r.dropouts,
                r.upload_failures,
                r.stragglers,
                r.quorum,
                r.quorum_shortfall,
                r.upload_retries,
                r.recovered_uploads,
                r.escalated_jobs,
                r.quarantined,
                r.churn_arrivals,
                r.churn_departures,
                r.chaos_dropped,
                r.chaos_delayed,
                r.chaos_duplicated,
                r.chaos_reordered,
                r.chaos_partition_held,
                r.suspected,
                r.expired,
                r.healed,
                r.shards,
                r.shard_shortfalls,
                r.wire_bytes,
                r.wire_raw_bytes,
                r.phase_counts[0],
                r.phase_counts[1],
                r.phase_counts[2],
                r.phase_counts[3],
                // The round's worst per-client suggest time: the MBO
                // overhead on the critical path (Fig. 13's quantity).
                r.suggest_ms.max,
                r.test_accuracy,
            ));
        }
        out
    }

    /// Writes the CSV to `path` crash-safely (temp file + rename),
    /// creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        write_atomic(path, &self.to_csv())
    }
}

/// Crash-safe file export: write `contents` to a sibling temp file,
/// fsync it, rename it over `path`, then fsync the parent directory.
/// Rename is atomic on POSIX filesystems and the two fsyncs make the
/// result *durable*: after `write_atomic` returns, a power loss leaves
/// either the previous artifact or the complete new one — never a
/// truncated hybrid, and never a rename the directory forgot. Parent
/// directories are created as needed and the temp file is cleaned up if
/// the rename fails.
///
/// The temp file is always a *sibling* of `path` (same directory, hence
/// same filesystem), so the rename can never cross a device boundary for
/// a writable target directory. If a cross-device rename still surfaces
/// (e.g. `path`'s directory is itself a bind-mount boundary), it comes
/// back as a typed [`io::Error`] naming both paths instead of a panic.
///
/// # Errors
///
/// Propagates filesystem errors as typed [`io::Error`]s; never panics.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => {
            fs::create_dir_all(p)?;
            p.to_path_buf()
        }
        _ => PathBuf::from("."),
    };
    let file_name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("artifact path has no file name: {}", path.display()),
        )
    })?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        // Contents must be on disk *before* the rename publishes them,
        // or a crash could expose a complete-looking but empty file.
        f.sync_all()?;
    }
    match fs::rename(&tmp, path) {
        Ok(()) => {
            // The rename itself lives in the directory entry; fsync the
            // directory so the new name survives power loss too.
            fs::File::open(&parent).and_then(|d| d.sync_all())?;
            Ok(())
        }
        Err(e) => {
            // Best-effort cleanup; the rename error is the one worth
            // surfacing.
            let _ = fs::remove_file(&tmp);
            // EXDEV (cross-device link): give the caller an actionable
            // message instead of a bare OS error.
            if e.raw_os_error() == Some(18) {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    format!(
                        "write_atomic: rename {} -> {} crosses a filesystem boundary; \
                         atomic publication needs both paths on one device ({e})",
                        tmp.display(),
                        path.display()
                    ),
                ));
            }
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bofl_fl::client::ClientRoundResult;

    fn outcome(id: usize, energy: f64, duration: f64, met: bool) -> ClientOutcome {
        ClientOutcome {
            client_id: id,
            result: ClientRoundResult {
                parameters: vec![0.0],
                samples: 10,
                deadline_met: met,
                energy_j: energy,
                duration_s: duration,
                last_loss: 0.5,
                phase: Some(Phase::Exploitation),
                escalated_jobs: 0,
                quarantined: 0,
                suggest_ms: 0.0,
            },
            dropped: false,
            straggler_factor: 1.0,
            upload_failed: false,
            upload_attempts: 1,
            late: false,
        }
    }

    fn record(round: usize) -> RoundRecord {
        RoundRecord {
            round,
            selected: vec![0, 1, 2],
            aggregated: vec![0, 1],
            deadline_s: 10.0,
            quorum: 0,
            quorum_shortfall: 0,
            energy_j: 60.0,
            test_accuracy: 0.8,
            test_loss: 0.4,
        }
    }

    #[test]
    fn distribution_summary() {
        let d = Distribution::of(&[3.0, 1.0, 2.0]);
        assert_eq!(d.count, 3);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 3.0);
        assert!((d.mean() - 2.0).abs() < 1e-12);
        assert_eq!(d.p95, 3.0);
        assert_eq!(Distribution::of(&[]), Distribution::default());
    }

    #[test]
    fn round_stats_aggregate_outcomes() {
        let outcomes = vec![
            outcome(0, 10.0, 5.0, true),
            outcome(1, 20.0, 6.0, true),
            outcome(2, 30.0, 12.0, false),
        ];
        let s = FleetRoundStats::from_round(&record(0), &outcomes);
        assert_eq!(s.selected, 3);
        assert_eq!(s.aggregated, 2);
        assert!((s.energy_j.sum - 60.0).abs() < 1e-12);
        assert!((s.deadline_miss_rate - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.phase_counts, [0, 0, 0, 3]);
        assert_eq!(s.stragglers, 0);
    }

    #[test]
    #[cfg_attr(
        not(debug_assertions),
        ignore = "debug_assert only fires in debug builds"
    )]
    #[should_panic(expected = "distribution samples must be finite")]
    fn distribution_rejects_nan_in_debug() {
        let _ = Distribution::of(&[1.0, f64::NAN]);
    }

    #[test]
    fn recovery_counters_surface_in_stats_and_csv() {
        let mut saved = outcome(0, 10.0, 5.0, true);
        saved.upload_attempts = 3; // failed twice, third attempt delivered
        let mut lost = outcome(1, 20.0, 6.0, true);
        lost.upload_failed = true;
        lost.upload_attempts = 2;
        let mut escalated = outcome(2, 30.0, 12.0, false);
        escalated.result.escalated_jobs = 4;
        escalated.result.quarantined = 1;
        escalated.result.suggest_ms = 7.25;
        let mut rec = record(0);
        rec.quorum = 3;
        rec.quorum_shortfall = 1;
        let s = FleetRoundStats::from_round(&rec, &[saved, lost, escalated]);
        assert_eq!(s.upload_retries, 3);
        assert_eq!(s.recovered_uploads, 1);
        assert_eq!(s.quorum, 3);
        assert_eq!(s.quorum_shortfall, 1);
        assert_eq!(s.escalated_jobs, 4);
        assert_eq!(s.quarantined, 1);
        assert_eq!(s.suggest_ms.max, 7.25);
        let mut m = FleetMetrics::new();
        m.rounds.push(s);
        assert_eq!(m.quorum_shortfall_rounds(), 1);
        assert_eq!(m.recovered_uploads(), 1);
        assert_eq!(m.escalated_jobs(), 4);
        assert_eq!(m.wasted_rounds(), 0);
        assert!((m.mean_aggregated_per_round() - 2.0).abs() < 1e-12);
        let csv = m.to_csv();
        let header_cols = FleetMetrics::CSV_HEADER.split(',').count();
        assert_eq!(csv.lines().nth(1).unwrap().split(',').count(), header_cols);
        assert!(csv.lines().next().unwrap().contains("recovered_uploads"));
        assert!(csv.lines().next().unwrap().contains("suggest_ms"));
        assert!(csv.lines().nth(1).unwrap().contains("7.250"));
    }

    #[test]
    fn churn_annotation_surfaces_in_stats_and_csv() {
        let mut m = FleetMetrics::new();
        m.record(&record(0), &[outcome(0, 10.0, 5.0, true)]);
        m.record(&record(1), &[outcome(1, 12.0, 5.5, true)]);
        m.annotate_churn(1, 2, 3);
        m.annotate_churn(9, 7, 7); // unknown round: ignored
        assert_eq!(m.rounds()[0].churn_arrivals, 0);
        assert_eq!(m.rounds()[1].churn_arrivals, 2);
        assert_eq!(m.rounds()[1].churn_departures, 3);
        assert_eq!(m.churn_arrivals(), 2);
        assert_eq!(m.churn_departures(), 3);
        let csv = m.to_csv();
        let header = csv.lines().next().unwrap();
        assert!(header.contains("churn_arrivals"));
        assert!(header.contains("churn_departures"));
        let cols = header.split(',').count();
        assert!(csv.lines().skip(1).all(|l| l.split(',').count() == cols));
    }

    #[test]
    fn chaos_and_liveness_annotations_surface_in_csv() {
        let mut m = FleetMetrics::new();
        m.record(&record(0), &[outcome(0, 10.0, 5.0, true)]);
        m.annotate_chaos(0, 3, 5, 1, 2, 4);
        m.annotate_liveness(0, 6, 2, 4);
        m.annotate_chaos(9, 1, 1, 1, 1, 1); // unknown round: ignored
        m.annotate_liveness(9, 1, 1, 1);
        let s = &m.rounds()[0];
        assert_eq!(
            (s.chaos_dropped, s.chaos_delayed, s.chaos_duplicated),
            (3, 5, 1)
        );
        assert_eq!((s.chaos_reordered, s.chaos_partition_held), (2, 4));
        assert_eq!((s.suspected, s.expired, s.healed), (6, 2, 4));
        assert_eq!(m.chaos_dropped(), 3);
        assert_eq!(m.suspected(), 6);
        assert_eq!(m.healed(), 4);
        let csv = m.to_csv();
        let header = csv.lines().next().unwrap();
        assert!(header.contains("chaos_partition_held"));
        assert!(header.contains(",suspected,expired,healed,"));
        let cols = header.split(',').count();
        assert!(csv.lines().skip(1).all(|l| l.split(',').count() == cols));
    }

    #[test]
    fn shard_and_wire_annotations_surface_in_csv() {
        let mut m = FleetMetrics::new();
        m.record(&record(0), &[outcome(0, 10.0, 5.0, true)]);
        m.annotate_shards(0, 16, 2);
        m.annotate_wire_bytes(0, 1_024, 8_192);
        m.annotate_shards(9, 1, 1); // unknown round: ignored
        m.annotate_wire_bytes(9, 1, 1);
        let s = &m.rounds()[0];
        assert_eq!((s.shards, s.shard_shortfalls), (16, 2));
        assert_eq!((s.wire_bytes, s.wire_raw_bytes), (1_024, 8_192));
        assert_eq!(m.shard_shortfall_rounds(), 1);
        assert_eq!(m.wire_bytes(), 1_024);
        assert_eq!(m.wire_raw_bytes(), 8_192);
        let csv = m.to_csv();
        let header = csv.lines().next().unwrap();
        assert!(header.contains(",shards,shard_shortfalls,wire_bytes,wire_raw_bytes,"));
        let cols = header.split(',').count();
        assert!(csv.lines().skip(1).all(|l| l.split(',').count() == cols));
    }

    #[test]
    fn atomic_write_lands_contents_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!(
            "bofl_atomic_write_{}_{}",
            std::process::id(),
            0x5eed_u32
        ));
        let path = dir.join("nested").join("metrics.csv");
        write_atomic(&path, "a,b\n1,2\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "a,b\n1,2\n");
        // Overwrite goes through the same temp-then-rename path.
        write_atomic(&path, "a,b\n3,4\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "a,b\n3,4\n");
        let leftovers: Vec<_> = fs::read_dir(path.parent().unwrap())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind");
        // A path with no file name is a typed error, not a panic.
        let err = write_atomic(Path::new("/"), "x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn csv_is_stable_and_well_formed() {
        let mut m = FleetMetrics::new();
        m.record(&record(0), &[outcome(0, 10.0, 5.0, true)]);
        m.record(&record(1), &[outcome(1, 12.0, 5.5, true)]);
        let csv = m.to_csv();
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 3);
        let cols = FleetMetrics::CSV_HEADER.split(',').count();
        for line in &lines {
            assert_eq!(line.split(',').count(), cols, "ragged row: {line}");
        }
        // Identical inputs render identical bytes.
        assert_eq!(csv, m.clone().to_csv());
        assert!(m.total_energy_j() > 0.0);
        assert_eq!(m.mean_miss_rate(), 0.0);
    }
}
