//! The deterministic parallel round engine.
//!
//! [`FleetEngine`] implements `bofl_fl`'s [`RoundEngine`] seam with a
//! fixed pool of OS threads (`std::thread::scope` + a mutex-guarded work
//! queue — no external runtime). Determinism falls out of three rules:
//!
//! 1. every client trains from seeds derived only from `(client, round)`,
//!    so a job's result is independent of *when* and *where* it runs;
//! 2. fault draws are a pure function of `(fault seed, round, client)`
//!    ([`FaultPlan::draw`]), never of scheduling order;
//! 3. outcomes are collected and sorted by client id before they are
//!    returned, erasing arrival order.
//!
//! Consequently the same fleet seed produces a byte-identical aggregate
//! trace whether the engine runs 1 worker or 64 — the property the
//! `fleet_determinism` regression test pins down.

use crate::fault::FaultPlan;
use bofl_fl::client::FlClient;
use bofl_fl::engine::{run_client_job, ClientJob, ClientOutcome, RoundEngine};
use bofl_fl::network::RetryPolicy;
use std::sync::{mpsc, Mutex};
use std::thread;

/// The seed the upload-retry backoff stream for `(round, client)` is
/// drawn from. Shared with the event-driven engine in `bofl-control` so
/// both engines reconstruct identical retry timelines from the same
/// outcome.
pub fn upload_backoff_seed(round: usize, client_id: usize) -> u64 {
    (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (client_id as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
}

/// A parallel round engine with a fixed-size worker pool and optional
/// fault injection.
#[derive(Debug, Clone)]
pub struct FleetEngine {
    workers: usize,
    faults: FaultPlan,
    retry: RetryPolicy,
    label: String,
}

impl FleetEngine {
    /// Creates an engine with `workers` OS threads per round.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "an engine needs at least one worker");
        FleetEngine {
            workers,
            faults: FaultPlan::none(),
            retry: RetryPolicy::none(),
            label: format!("fleet({workers} workers)"),
        }
    }

    /// The single-threaded fleet engine: jobs run inline on the caller's
    /// thread, with the same fault-injection semantics as the parallel
    /// pool. This is the reference the parallel configurations are
    /// compared against (and the path doc examples use).
    pub fn sequential() -> Self {
        FleetEngine {
            workers: 1,
            faults: FaultPlan::none(),
            retry: RetryPolicy::none(),
            label: "fleet(sequential)".to_string(),
        }
    }

    /// Attaches a fault-injection plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches an upload retry policy (defaults to
    /// [`RetryPolicy::none`], single-attempt uploads).
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The engine's fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// The engine's upload retry policy.
    pub fn retry(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Runs one job and applies this engine's fault draws to the result.
    fn run_faulted(&self, client: &mut FlClient, global: &[f64], job: &ClientJob) -> ClientOutcome {
        let draw = self.faults.draw(job.round, job.client_id);

        // A straggler draw inflates every job's latency *inside* the
        // client's executor rather than stretching the finished round:
        // the pace controller observes the slowdown as it happens, so its
        // recovery machinery (guardian escalation, quarantine) gets the
        // chance to rescue the deadline — and `deadline_met` is judged on
        // whatever duration actually resulted.
        let mut faulted = *job;
        faulted.slowdown = job.slowdown * draw.straggler_factor;
        let mut out = run_client_job(client, global, &faulted);

        out.dropped = out.dropped || draw.dropped;
        out.upload_failed = draw.upload_failed;

        // Upload retry: while the reporting budget (time left before the
        // round's limit) still admits a backoff, re-attempt the upload.
        // Every quantity here is pure in (round, client, attempt), so the
        // trace stays byte-identical at any worker count.
        if out.upload_failed && !self.retry.is_none() && !out.dropped && out.result.deadline_met {
            let budget = (job.deadline.limit_s() - out.result.duration_s).max(0.0);
            let backoff_seed = upload_backoff_seed(job.round, job.client_id);
            let mut waited_s = 0.0;
            while out.upload_failed && out.upload_attempts < self.retry.max_attempts {
                let wait = self.retry.backoff_s(out.upload_attempts, backoff_seed);
                if waited_s + wait > budget {
                    break;
                }
                waited_s += wait;
                out.upload_attempts += 1;
                out.upload_failed = self.faults.upload_attempt_failed(
                    job.round,
                    job.client_id,
                    out.upload_attempts,
                );
            }
        }
        out
    }
}

impl RoundEngine for FleetEngine {
    fn label(&self) -> &str {
        &self.label
    }

    fn run_batch(
        &mut self,
        clients: &mut [FlClient],
        global: &[f64],
        jobs: &[ClientJob],
    ) -> Vec<ClientOutcome> {
        // Pair each job with a disjoint `&mut` into the client pool. The
        // server hands jobs sorted by unique client id; walking the pool
        // once with `iter_mut` keeps the borrows provably disjoint without
        // unsafe code.
        debug_assert!(
            jobs.windows(2).all(|w| w[0].client_id < w[1].client_id),
            "jobs must be sorted by unique client id"
        );
        let mut pending = jobs.iter();
        let mut next = pending.next();
        let mut pairs: Vec<(&mut FlClient, &ClientJob)> = Vec::with_capacity(jobs.len());
        for (id, client) in clients.iter_mut().enumerate() {
            match next {
                Some(job) if job.client_id == id => {
                    pairs.push((client, job));
                    next = pending.next();
                }
                _ => {}
            }
        }
        assert!(
            next.is_none(),
            "job references client {} outside the pool of {}",
            next.map_or(0, |j| j.client_id),
            clients.len()
        );

        if self.workers == 1 {
            return pairs
                .into_iter()
                .map(|(client, job)| self.run_faulted(client, global, job))
                .collect();
        }

        // Work-stealing-lite: a shared iterator behind a mutex. Each lock
        // is held only long enough to pop one job, so contention is
        // negligible next to a client's training time, and slow jobs
        // (stragglers, TX2 boards) never pin fast workers to a static
        // partition.
        let queue = Mutex::new(pairs.into_iter());
        let (tx, rx) = mpsc::channel::<ClientOutcome>();
        let engine: &FleetEngine = self;
        thread::scope(|scope| {
            for _ in 0..engine.workers.min(jobs.len()).max(1) {
                let tx = tx.clone();
                let queue = &queue;
                scope.spawn(move || loop {
                    let item = queue.lock().expect("work queue poisoned").next();
                    let Some((client, job)) = item else { break };
                    let outcome = engine.run_faulted(client, global, job);
                    if tx.send(outcome).is_err() {
                        break;
                    }
                });
            }
        });
        drop(tx);
        let mut outcomes: Vec<ClientOutcome> = rx.into_iter().collect();
        // Arrival order is scheduling-dependent; id order is not.
        outcomes.sort_by_key(|o| o.client_id);
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bofl::baselines::PerformantController;
    use bofl_device::Device;
    use bofl_fl::data::SyntheticDataset;
    use bofl_fl::engine::{RoundDeadline, SequentialEngine};
    use bofl_fl::model::{SoftmaxModel, TrainableModel};
    use bofl_workload::{FlTask, TaskKind, Testbed};

    fn pool(n: usize) -> Vec<FlClient> {
        (0..n)
            .map(|id| {
                let task = FlTask::preset(TaskKind::Cifar10Vit, Testbed::JetsonAgx);
                let data =
                    SyntheticDataset::gaussian_blobs(task.local_samples(), 6, 3, 0.4, id as u64);
                FlClient::new(
                    id,
                    Device::jetson_agx(),
                    task,
                    data,
                    Box::new(SoftmaxModel::new(6, 3, id as u64)),
                    Box::new(PerformantController::new()),
                    0.2,
                    1000 + id as u64,
                )
            })
            .collect()
    }

    fn jobs_for(clients: &[FlClient]) -> Vec<ClientJob> {
        let deadline = clients.iter().map(|c| c.t_min_s()).fold(0.0, f64::max) * 2.0;
        clients
            .iter()
            .map(|c| ClientJob {
                client_id: c.id(),
                round: 0,
                deadline: RoundDeadline::Training(deadline),
                dropped: false,
                slowdown: 1.0,
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential_engine_exactly() {
        let params = SoftmaxModel::new(6, 3, 77).parameters();
        let mut a = pool(6);
        let mut b = pool(6);
        let jobs = jobs_for(&a);
        let base = SequentialEngine::new().run_batch(&mut a, &params, &jobs);
        let par = FleetEngine::new(4).run_batch(&mut b, &params, &jobs);
        assert_eq!(base, par);
    }

    #[test]
    fn faults_are_identical_across_worker_counts() {
        let params = SoftmaxModel::new(6, 3, 77).parameters();
        let faults = FaultPlan::new(5)
            .with_dropout(0.3)
            .with_stragglers(0.5, (2.0, 5.0))
            .with_upload_failures(0.2);
        let jobs = jobs_for(&pool(8));
        let run = |workers: usize| {
            let mut clients = pool(8);
            let mut engine = FleetEngine::new(workers).with_faults(faults);
            engine.run_batch(&mut clients, &params, &jobs)
        };
        let one = run(1);
        let eight = run(8);
        assert_eq!(one, eight);
        // The plan's parameters are aggressive enough that something fired.
        assert!(one
            .iter()
            .any(|o| o.dropped || o.upload_failed || o.straggler_factor > 1.0));
    }

    #[test]
    fn stragglers_can_miss_deadlines() {
        let params = SoftmaxModel::new(6, 3, 77).parameters();
        let mut clients = pool(4);
        // Deadline 2× T_min, slowdown ≥ 3×: every straggler must miss.
        let jobs = jobs_for(&clients);
        let mut engine =
            FleetEngine::new(2).with_faults(FaultPlan::new(9).with_stragglers(1.0, (3.0, 4.0)));
        let outcomes = engine.run_batch(&mut clients, &params, &jobs);
        assert!(outcomes.iter().all(|o| o.straggler_factor >= 3.0));
        assert!(outcomes.iter().all(|o| o.missed_deadline()));
        assert!(outcomes.iter().all(|o| !o.aggregatable()));
    }

    #[test]
    fn retries_recover_some_uploads_and_stay_deterministic() {
        let params = SoftmaxModel::new(6, 3, 77).parameters();
        let faults = FaultPlan::new(13).with_upload_failures(0.6);
        let jobs = jobs_for(&pool(12));
        let run = |workers: usize, retry: RetryPolicy| {
            let mut clients = pool(12);
            let mut engine = FleetEngine::new(workers)
                .with_faults(faults)
                .with_retry(retry);
            engine.run_batch(&mut clients, &params, &jobs)
        };
        let no_retry = run(1, RetryPolicy::none());
        let with_retry = run(1, RetryPolicy::recovery());
        // Retries never change which first attempts fail…
        for (a, b) in no_retry.iter().zip(&with_retry) {
            assert_eq!(a.upload_failed, b.upload_attempts > 1 || b.upload_failed);
        }
        // …and at p = 0.6 with 3 attempts, some upload must be recovered.
        assert!(with_retry.iter().any(|o| o.recovered_upload()));
        let recovered: Vec<usize> = with_retry
            .iter()
            .filter(|o| o.recovered_upload())
            .map(|o| o.client_id)
            .collect();
        assert!(recovered
            .iter()
            .all(|&id| no_retry[id].upload_failed && !with_retry[id].upload_failed));
        // The whole trace, retries included, is worker-count independent.
        let parallel = run(8, RetryPolicy::recovery());
        assert_eq!(with_retry, parallel);
    }

    #[test]
    fn dropped_or_late_clients_never_retry() {
        let params = SoftmaxModel::new(6, 3, 77).parameters();
        let faults = FaultPlan::new(13)
            .with_dropout(1.0)
            .with_upload_failures(1.0);
        let mut clients = pool(4);
        let jobs = jobs_for(&clients);
        let mut engine = FleetEngine::new(2)
            .with_faults(faults)
            .with_retry(RetryPolicy::recovery());
        let outcomes = engine.run_batch(&mut clients, &params, &jobs);
        // A vanished client has nobody left to retry the upload.
        assert!(outcomes.iter().all(|o| o.upload_attempts == 1));
        assert!(outcomes.iter().all(|o| !o.aggregatable()));
    }

    #[test]
    fn subset_batches_map_to_the_right_clients() {
        let params = SoftmaxModel::new(6, 3, 77).parameters();
        let mut clients = pool(5);
        let all = jobs_for(&clients);
        let subset: Vec<ClientJob> = vec![all[1], all[3]];
        let outcomes = FleetEngine::new(3).run_batch(&mut clients, &params, &subset);
        let ids: Vec<usize> = outcomes.iter().map(|o| o.client_id).collect();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn rejects_zero_workers() {
        let _ = FleetEngine::new(0);
    }
}
