//! **bofl-fleet** — fleet-scale federated-learning simulation for BoFL.
//!
//! The paper evaluates BoFL on a handful of boards; this crate scales the
//! same simulation to populations of hundreds of heterogeneous clients
//! while keeping every run bit-for-bit reproducible:
//!
//! - [`generator`] — samples a heterogeneous fleet from the testbed
//!   device models: mixed AGX/TX2 boards with per-client thermal/latency
//!   jitter and DVFS-transition variation, all a pure function of the
//!   fleet seed ([`FleetSpec`]);
//! - [`engine`] — [`FleetEngine`], a parallel implementation of
//!   `bofl_fl`'s round-engine seam: a fixed pool of OS threads drains the
//!   round's job queue, and because every client trains from
//!   `(client, round)`-derived seeds and outcomes are re-sorted by id,
//!   the aggregate trace is identical at any worker count;
//! - [`fault`] — deterministic fault injection ([`FaultPlan`]): client
//!   dropout, transient straggler slowdowns and upload failures, drawn
//!   per `(round, client)` from a dedicated seed;
//! - [`metrics`] — [`FleetMetrics`], per-round energy/latency
//!   distributions, deadline-miss rate, fault counts and controller-phase
//!   occupancy, exported as CSV in the `results/` conventions;
//! - [`sim`] — [`FleetSimulation`], the one-stop builder wiring all of
//!   the above into a `bofl_fl::Federation`.
//!
//! # Example
//!
//! ```
//! use bofl_fleet::prelude::*;
//! use bofl_fl::FederationConfig;
//!
//! let spec = FleetSpec::mixed(12, 7);
//! let mut sim = FleetSimulation::builder(spec)
//!     .federation(FederationConfig {
//!         clients_per_round: 4,
//!         rounds: 2,
//!         seed: 7,
//!         ..FederationConfig::default()
//!     })
//!     .workers(4)
//!     .faults(FaultPlan::new(1).with_dropout(0.1))
//!     .build();
//! let report = sim.run();
//! assert_eq!(report.history.rounds.len(), 2);
//! // The same spec run sequentially produces the identical report.
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compress;
pub mod engine;
pub mod fault;
pub mod generator;
pub mod metrics;
pub mod process;
pub mod sampler;
pub mod scale;
pub mod shard;
pub mod sim;
pub mod wire;

pub use compress::{CompressedUpdate, Compressor, Int8Quantizer, NoCompression, TopKSparsifier};
pub use engine::FleetEngine;
pub use fault::{ChurnStatus, FaultDraw, FaultPlan};
pub use generator::{ClientProfile, DeviceKind, FleetSpec};
pub use metrics::{Distribution, FleetMetrics, FleetRoundStats};
pub use process::{ClientSpec, ProcessClientHarness};
pub use sampler::{
    ClientSampler, ClientStat, EnergyAwareSampler, LossStalenessSampler, UniformSampler,
};
pub use scale::{ScaleConfig, ScaleReport, ScaleRoundTrace, ScaleSimulation};
pub use shard::{ShardPlan, ShardRoundStats, UpdateAccumulator};
pub use sim::{FleetRunReport, FleetSimulation, FleetSimulationBuilder};
pub use wire::{Frame, FrameReader, WireError, WireMsg};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::compress::{
        CompressedUpdate, Compressor, Int8Quantizer, NoCompression, TopKSparsifier,
    };
    pub use crate::engine::FleetEngine;
    pub use crate::fault::{ChurnStatus, FaultDraw, FaultPlan};
    pub use crate::generator::{ClientProfile, DeviceKind, FleetSpec};
    pub use crate::metrics::{Distribution, FleetMetrics, FleetRoundStats};
    pub use crate::process::{ClientSpec, ProcessClientHarness};
    pub use crate::sampler::{
        ClientSampler, ClientStat, EnergyAwareSampler, LossStalenessSampler, UniformSampler,
    };
    pub use crate::scale::{ScaleConfig, ScaleReport, ScaleRoundTrace, ScaleSimulation};
    pub use crate::shard::{ShardPlan, ShardRoundStats, UpdateAccumulator};
    pub use crate::sim::{FleetRunReport, FleetSimulation, FleetSimulationBuilder};
    pub use crate::wire::{Frame, FrameReader, WireError, WireMsg};
    pub use bofl_fl::network::RetryPolicy;
    pub use bofl_fl::server::AggregationPolicy;
}
