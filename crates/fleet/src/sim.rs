//! The high-level fleet simulation: generator + engine + metrics in one
//! builder, so an experiment is a dozen lines instead of a page of wiring.

use crate::engine::FleetEngine;
use crate::fault::FaultPlan;
use crate::generator::FleetSpec;
use crate::metrics::FleetMetrics;
use bofl::task::PaceController;
use bofl_fl::network::RetryPolicy;
use bofl_fl::server::{Federation, FederationConfig, RunHistory};

/// A ready-to-run fleet simulation. Build one with
/// [`FleetSimulation::builder`].
pub struct FleetSimulation {
    federation: Federation,
    rounds: usize,
}

impl std::fmt::Debug for FleetSimulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetSimulation")
            .field("clients", &self.federation.num_clients())
            .field("rounds", &self.rounds)
            .field("engine", &self.federation.engine_label())
            .finish()
    }
}

impl FleetSimulation {
    /// Starts building a simulation over the given fleet.
    pub fn builder(spec: FleetSpec) -> FleetSimulationBuilder {
        let config = FederationConfig {
            num_clients: spec.num_clients,
            seed: spec.seed,
            ..FederationConfig::default()
        };
        FleetSimulationBuilder {
            spec,
            config,
            workers: 1,
            faults: FaultPlan::none(),
            retry: RetryPolicy::none(),
            controller_factory: None,
            shard_plan: crate::shard::ShardPlan::flat(),
        }
    }

    /// Runs all rounds, collecting fleet metrics as it goes.
    pub fn run(&mut self) -> FleetRunReport {
        let mut metrics = FleetMetrics::new();
        let mut rounds = Vec::with_capacity(self.rounds);
        for round in 0..self.rounds {
            let (record, outcomes) = self.federation.run_round_detailed(round);
            metrics.record(&record, &outcomes);
            rounds.push(record);
        }
        FleetRunReport {
            history: RunHistory { rounds },
            metrics,
        }
    }

    /// The underlying federation (e.g. for inspecting clients).
    pub fn federation(&self) -> &Federation {
        &self.federation
    }
}

/// What a fleet run produces: the FedAvg history plus fleet metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRunReport {
    /// Per-round FedAvg records (selection, accuracy, energy).
    pub history: RunHistory,
    /// Per-round fleet distributions, fault counts and phase occupancy.
    pub metrics: FleetMetrics,
}

impl FleetRunReport {
    /// Total fleet energy, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.history.total_energy_j()
    }

    /// Final global-model test accuracy.
    pub fn final_accuracy(&self) -> f64 {
        self.history.final_accuracy()
    }
}

/// A per-client pace-controller factory: client id → controller.
type ControllerFactory = Box<dyn Fn(usize) -> Box<dyn PaceController>>;

/// Builder for [`FleetSimulation`].
pub struct FleetSimulationBuilder {
    spec: FleetSpec,
    config: FederationConfig,
    workers: usize,
    faults: FaultPlan,
    retry: RetryPolicy,
    controller_factory: Option<ControllerFactory>,
    shard_plan: crate::shard::ShardPlan,
}

impl std::fmt::Debug for FleetSimulationBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetSimulationBuilder")
            .field("spec", &self.spec)
            .field("workers", &self.workers)
            .finish()
    }
}

impl FleetSimulationBuilder {
    /// Overrides the federation configuration. `num_clients` is forced to
    /// the fleet spec's population size.
    #[must_use]
    pub fn federation(mut self, config: FederationConfig) -> Self {
        self.config = FederationConfig {
            num_clients: self.spec.num_clients,
            ..config
        };
        self
    }

    /// Sets the worker-thread count (default 1 = sequential).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Attaches a fault-injection plan.
    #[must_use]
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches an upload retry policy (defaults to
    /// [`RetryPolicy::none`]).
    #[must_use]
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the server's aggregation shard plan (defaults to flat). Pure
    /// execution geometry: the run's history is identical at any shard
    /// count.
    #[must_use]
    pub fn shard_plan(mut self, plan: crate::shard::ShardPlan) -> Self {
        self.shard_plan = plan;
        self
    }

    /// Sets the per-client pace-controller factory (client id →
    /// controller; defaults to the federation's default, the Performant
    /// baseline).
    #[must_use]
    pub fn controller_factory(
        mut self,
        f: impl Fn(usize) -> Box<dyn PaceController> + 'static,
    ) -> Self {
        self.controller_factory = Some(Box::new(f));
        self
    }

    /// Builds the simulation.
    pub fn build(self) -> FleetSimulation {
        let spec = self.spec;
        let engine = if self.workers == 1 {
            FleetEngine::sequential()
                .with_faults(self.faults)
                .with_retry(self.retry)
        } else {
            FleetEngine::new(self.workers)
                .with_faults(self.faults)
                .with_retry(self.retry)
        };
        let rounds = self.config.rounds;
        let mut builder = Federation::builder(self.config)
            .device_factory(move |id| spec.device(id))
            .shard_plan(self.shard_plan)
            .engine(engine);
        if let Some(f) = self.controller_factory {
            builder = builder.controller_factory(f);
        }
        FleetSimulation {
            federation: builder.build(),
            rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> FleetSpec {
        FleetSpec::mixed(6, 21)
    }

    fn quick_config() -> FederationConfig {
        FederationConfig {
            clients_per_round: 3,
            rounds: 3,
            classes: 3,
            feature_dims: 6,
            seed: 21,
            ..FederationConfig::default()
        }
    }

    #[test]
    fn simulation_runs_and_reports() {
        let mut sim = FleetSimulation::builder(quick_spec())
            .federation(quick_config())
            .workers(2)
            .build();
        let report = sim.run();
        assert_eq!(report.history.rounds.len(), 3);
        assert_eq!(report.metrics.rounds().len(), 3);
        assert!(report.total_energy_j() > 0.0);
        let csv = report.metrics.to_csv();
        assert_eq!(csv.trim_end().lines().count(), 4);
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        let run = |workers: usize| {
            FleetSimulation::builder(quick_spec())
                .federation(quick_config())
                .workers(workers)
                .build()
                .run()
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq, par);
        assert_eq!(seq.metrics.to_csv(), par.metrics.to_csv());
    }

    #[test]
    fn fault_plan_reaches_the_engine() {
        let mut sim = FleetSimulation::builder(quick_spec())
            .federation(quick_config())
            .workers(2)
            .faults(FaultPlan::new(3).with_dropout(1.0))
            .build();
        let report = sim.run();
        // Everyone trains, nobody's update arrives.
        assert!(report
            .history
            .rounds
            .iter()
            .all(|r| r.aggregated.is_empty()));
        assert!(report.total_energy_j() > 0.0);
    }
}
