//! Proof that the sharded aggregation hot path is allocation-free in the
//! steady state: a counting global allocator measures the exact number of
//! heap allocations each strategy performs. The naive FedAvg fold clones
//! every client's full model; the fixed-point [`UpdateAccumulator`] path
//! reuses preallocated buffers and performs **zero** allocations once
//! warm.

use bofl_fleet::shard::{aggregate_sharded, ShardPlan, UpdateAccumulator};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Passes every request through to the system allocator, counting calls.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations_during(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

const DIM: usize = 256;
const CLIENTS: usize = 64;

fn synth_updates() -> Vec<(Vec<f64>, u64)> {
    (0..CLIENTS)
        .map(|i| {
            let params: Vec<f64> = (0..DIM)
                .map(|d| ((i * 31 + d * 7) % 97) as f64 / 97.0 - 0.5)
                .collect();
            (params, 50 + i as u64)
        })
        .collect()
}

/// The pre-PR hot path: clone each client's parameters, scale, and fold —
/// at least one full-model allocation per client per round.
fn naive_weighted_average(updates: &[(Vec<f64>, u64)]) -> Vec<f64> {
    let total: u64 = updates.iter().map(|(_, w)| *w).sum();
    let mut sum = vec![0.0f64; DIM];
    for (params, weight) in updates {
        let scaled: Vec<f64> = params.iter().map(|p| p * *weight as f64).collect();
        for (s, v) in sum.iter_mut().zip(scaled.iter()) {
            *s += v;
        }
    }
    sum.iter_mut().for_each(|s| *s /= total as f64);
    sum
}

#[test]
fn accumulator_path_allocates_nothing_once_warm() {
    let clients = synth_updates();
    let updates: Vec<(&[f64], u64)> = clients.iter().map(|(p, w)| (p.as_slice(), *w)).collect();
    let plan = ShardPlan::with_shards(8);
    let mut root = UpdateAccumulator::new();
    let mut scratch = UpdateAccumulator::new();
    let mut out = Vec::new();

    // Round 0 warms the buffers (root/scratch sums, the output vector).
    assert!(aggregate_sharded(
        plan,
        DIM,
        &updates,
        &mut root,
        &mut scratch,
        &mut out
    ));

    // Steady state: every subsequent round reuses them all.
    let steady = allocations_during(|| {
        for _ in 0..10 {
            assert!(aggregate_sharded(
                plan,
                DIM,
                &updates,
                &mut root,
                &mut scratch,
                &mut out
            ));
        }
    });
    assert_eq!(
        steady, 0,
        "warm sharded aggregation must not allocate (got {steady} allocations over 10 rounds)"
    );

    // The naive fold allocates at least one clone per client per round.
    let naive = allocations_during(|| {
        for _ in 0..10 {
            std::hint::black_box(naive_weighted_average(&clients));
        }
    });
    assert!(
        naive >= 10 * CLIENTS,
        "naive fold should clone per client (got {naive} allocations)"
    );
}

#[test]
fn both_paths_agree_on_the_average() {
    let clients = synth_updates();
    let updates: Vec<(&[f64], u64)> = clients.iter().map(|(p, w)| (p.as_slice(), *w)).collect();
    let mut root = UpdateAccumulator::new();
    let mut scratch = UpdateAccumulator::new();
    let mut fixed = Vec::new();
    assert!(aggregate_sharded(
        ShardPlan::with_shards(4),
        DIM,
        &updates,
        &mut root,
        &mut scratch,
        &mut fixed
    ));
    let float = naive_weighted_average(&clients);
    for (a, b) in fixed.iter().zip(float.iter()) {
        assert!((a - b).abs() < 1e-8, "fixed {a} vs float {b}");
    }
}
