//! The fleet engine's headline guarantee: a fleet seed fully determines
//! the aggregate trace, independent of how many worker threads execute it.

use bofl_fl::server::FederationConfig;
use bofl_fleet::prelude::*;
use proptest::prelude::*;

fn run_fleet(seed: u64, workers: usize) -> FleetRunReport {
    let spec = FleetSpec::mixed(10, seed);
    FleetSimulation::builder(spec)
        .federation(FederationConfig {
            clients_per_round: 4,
            rounds: 3,
            classes: 3,
            feature_dims: 6,
            seed,
            ..FederationConfig::default()
        })
        .workers(workers)
        .faults(
            FaultPlan::new(seed ^ 0xFA17)
                .with_dropout(0.15)
                .with_stragglers(0.25, (1.5, 3.0))
                .with_upload_failures(0.1),
        )
        .build()
        .run()
}

/// Like [`run_fleet`], but with the full recovery stack enabled: quorum +
/// over-selection, retried uploads with backoff, and the same fault plan.
fn run_fleet_recovering(seed: u64, workers: usize) -> FleetRunReport {
    let spec = FleetSpec::mixed(10, seed);
    FleetSimulation::builder(spec)
        .federation(FederationConfig {
            clients_per_round: 4,
            rounds: 3,
            classes: 3,
            feature_dims: 6,
            seed,
            aggregation: AggregationPolicy::recovery(),
            ..FederationConfig::default()
        })
        .workers(workers)
        .faults(
            FaultPlan::new(seed ^ 0xFA17)
                .with_dropout(0.15)
                .with_stragglers(0.25, (1.5, 3.0))
                .with_upload_failures(0.1),
        )
        .retry(RetryPolicy::recovery())
        .build()
        .run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Same fleet seed, 1 worker vs 8 workers: identical per-round
    /// reports, identical fleet metrics, byte-identical CSV.
    #[test]
    fn trace_is_independent_of_worker_count(seed in 0u64..1_000_000) {
        let sequential = run_fleet(seed, 1);
        let parallel = run_fleet(seed, 8);
        prop_assert_eq!(&sequential.history, &parallel.history);
        prop_assert_eq!(&sequential.metrics, &parallel.metrics);
        prop_assert_eq!(sequential.metrics.to_csv(), parallel.metrics.to_csv());
    }

    /// The recovery stack (quorum aggregation, over-selection, retried
    /// uploads with seeded backoff) must preserve the same guarantee:
    /// retries are pure in (round, client, attempt), never in scheduling.
    #[test]
    fn recovery_trace_is_independent_of_worker_count(seed in 0u64..1_000_000) {
        let sequential = run_fleet_recovering(seed, 1);
        let parallel = run_fleet_recovering(seed, 8);
        prop_assert_eq!(&sequential.history, &parallel.history);
        prop_assert_eq!(&sequential.metrics, &parallel.metrics);
        prop_assert_eq!(sequential.metrics.to_csv(), parallel.metrics.to_csv());
    }
}

#[test]
fn different_seeds_diverge() {
    // Sanity against a trivially-constant trace: determinism must come
    // from the seed, not from the simulation ignoring it.
    let a = run_fleet(1, 4);
    let b = run_fleet(2, 4);
    assert_ne!(a.history, b.history);
}

#[test]
fn repeated_runs_are_reproducible() {
    let first = run_fleet(77, 4);
    let second = run_fleet(77, 4);
    assert_eq!(first, second);
    assert_eq!(first.metrics.to_csv(), second.metrics.to_csv());
}
