//! Fault-injection behavior at the federation level: total dropout must
//! starve aggregation without hanging or panicking, and straggler
//! slowdowns must surface in the fleet metrics.

use bofl_fl::server::FederationConfig;
use bofl_fleet::prelude::*;

fn config(seed: u64) -> FederationConfig {
    FederationConfig {
        clients_per_round: 4,
        rounds: 4,
        classes: 3,
        feature_dims: 6,
        seed,
        ..FederationConfig::default()
    }
}

#[test]
fn total_dropout_terminates_with_no_aggregation() {
    let spec = FleetSpec::mixed(8, 13);
    let mut sim = FleetSimulation::builder(spec)
        .federation(config(13))
        .workers(4)
        .faults(FaultPlan::new(99).with_dropout(1.0))
        .build();
    let report = sim.run();

    // The run completes every configured round (no hang, no panic)...
    assert_eq!(report.history.rounds.len(), 4);
    // ...no update is ever aggregated, so the global model never moves...
    assert!(report
        .history
        .rounds
        .iter()
        .all(|r| r.aggregated.is_empty()));
    let accuracies: Vec<f64> = report
        .history
        .rounds
        .iter()
        .map(|r| r.test_accuracy)
        .collect();
    assert!(accuracies.windows(2).all(|w| w[0] == w[1]));
    // ...every selected client is reported dropped, and the wasted energy
    // is still accounted.
    for stats in report.metrics.rounds() {
        assert_eq!(stats.dropouts, stats.selected);
        assert_eq!(stats.aggregated, 0);
    }
    assert!(report.total_energy_j() > 0.0);
}

#[test]
fn guaranteed_stragglers_all_miss_their_deadlines() {
    // Homogeneous hardware: every client's T_min equals the round's
    // T_min, so a deadline of at most 2 × T_min cannot absorb a ≥3×
    // slowdown. (In a mixed fleet the deadline tracks the slowest board,
    // leaving fast boards enough slack to survive a slowdown.)
    let spec = FleetSpec::uniform_agx(8, 29);
    let mut sim = FleetSimulation::builder(spec)
        .federation(config(29))
        .workers(4)
        .faults(FaultPlan::new(7).with_stragglers(1.0, (3.0, 5.0)))
        .build();
    let report = sim.run();
    for stats in report.metrics.rounds() {
        assert_eq!(stats.stragglers, stats.selected, "100% straggler rounds");
        assert_eq!(stats.deadline_miss_rate, 1.0);
        assert_eq!(stats.aggregated, 0);
    }
}

#[test]
fn upload_failures_waste_finished_rounds() {
    let spec = FleetSpec::mixed(8, 31);
    let mut sim = FleetSimulation::builder(spec)
        .federation(config(31))
        .workers(2)
        .faults(FaultPlan::new(5).with_upload_failures(1.0))
        .build();
    let report = sim.run();
    for stats in report.metrics.rounds() {
        assert_eq!(stats.upload_failures, stats.selected);
        assert_eq!(stats.aggregated, 0);
        // Training itself succeeded — these are not deadline misses.
        assert_eq!(stats.deadline_miss_rate, 0.0);
    }
    assert!(report.total_energy_j() > 0.0);
}

#[test]
fn healthy_fleet_aggregates_everyone() {
    let spec = FleetSpec::mixed(8, 41);
    let mut sim = FleetSimulation::builder(spec)
        .federation(config(41))
        .workers(4)
        .build();
    let report = sim.run();
    for (r, stats) in report.history.rounds.iter().zip(report.metrics.rounds()) {
        assert_eq!(r.aggregated, r.selected);
        assert_eq!(stats.dropouts, 0);
        assert_eq!(stats.stragglers, 0);
        assert_eq!(stats.upload_failures, 0);
    }
}
