//! The fault-recovery acceptance suite: with the recovery stack enabled
//! (quorum + over-selection, upload retry with deterministic backoff, and
//! mid-round guardian escalation) a faulted fleet must make strictly more
//! progress than the same fleet without it — lower deadline-miss rate,
//! more aggregated updates per round, fewer wasted (zero-update) rounds —
//! and every recovery action must be visible in the fleet metrics CSV.
//!
//! Tests marked `stress` run an elevated fault plan and are skipped by a
//! plain `cargo test`; run them with
//! `cargo test -p bofl-fleet --features stress`.

use bofl::baselines::OracleController;
use bofl::exploit::ExploitParams;
use bofl_fl::server::FederationConfig;
use bofl_fleet::prelude::*;
use bofl_workload::{FlTask, TaskKind, Testbed};

/// The ISSUE's reference fault plan: 30% transient stragglers slowed
/// 2–4×, 10% of uploads lost.
fn reference_faults(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_stragglers(0.3, (2.0, 4.0))
        .with_upload_failures(0.1)
}

fn federation_config(seed: u64, aggregation: AggregationPolicy) -> FederationConfig {
    FederationConfig {
        clients_per_round: 4,
        rounds: 10,
        classes: 3,
        feature_dims: 6,
        seed,
        aggregation,
        ..FederationConfig::default()
    }
}

/// Builds a simulation where every client runs the Oracle controller for
/// its own device: the exploitation ILP plans rounds that *fill* the
/// deadline, which is exactly the posture a mid-round slowdown punishes —
/// and mid-round escalation rescues.
fn oracle_sim(
    spec: FleetSpec,
    seed: u64,
    aggregation: AggregationPolicy,
    retry: RetryPolicy,
    exploit: ExploitParams,
) -> FleetSimulation {
    FleetSimulation::builder(spec)
        .federation(federation_config(seed, aggregation))
        .faults(reference_faults(seed ^ 0xFA17))
        .retry(retry)
        .controller_factory(move |id| {
            let task = FlTask::preset(TaskKind::Cifar10Vit, Testbed::JetsonAgx);
            let profile = spec.device(id).profile_all(&task);
            Box::new(OracleController::new(profile).with_params(exploit))
        })
        .build()
}

/// The headline acceptance criterion: on the same fleet seed and the same
/// fault plan, the recovery configuration achieves a strictly lower
/// deadline-miss rate AND strictly more aggregated updates per round than
/// the no-recovery baseline.
#[test]
fn recovery_stack_beats_no_recovery_baseline() {
    let seed = 33;
    let spec = FleetSpec::mixed(8, seed);

    let no_escalation = ExploitParams {
        escalation_enabled: false,
        ..ExploitParams::default()
    };
    let baseline = oracle_sim(
        spec,
        seed,
        AggregationPolicy::none(),
        RetryPolicy::none(),
        no_escalation,
    )
    .run();
    let recovered = oracle_sim(
        spec,
        seed,
        AggregationPolicy::recovery(),
        RetryPolicy::recovery(),
        ExploitParams::default(),
    )
    .run();

    let base_miss = baseline.metrics.mean_miss_rate();
    let rec_miss = recovered.metrics.mean_miss_rate();
    assert!(
        rec_miss < base_miss,
        "recovery must strictly lower the deadline-miss rate: {rec_miss:.3} vs {base_miss:.3}"
    );

    let base_agg = baseline.metrics.mean_aggregated_per_round();
    let rec_agg = recovered.metrics.mean_aggregated_per_round();
    assert!(
        rec_agg > base_agg,
        "recovery must strictly raise aggregated updates per round: {rec_agg:.2} vs {base_agg:.2}"
    );

    // The mechanisms actually fired (this is recovery, not luck) …
    assert!(
        recovered.metrics.escalated_jobs() > 0,
        "guardian escalation never fired"
    );

    // … and every one of them is visible in the CSV artifact.
    let csv = recovered.metrics.to_csv();
    let header = csv.lines().next().unwrap();
    for col in [
        "quorum",
        "quorum_shortfall",
        "upload_retries",
        "recovered_uploads",
        "escalated_jobs",
        "quarantined",
    ] {
        assert!(header.contains(col), "CSV header missing `{col}`");
    }
    let cols = header.split(',').count();
    assert!(csv.lines().skip(1).all(|l| l.split(',').count() == cols));
}

/// Satellite criterion: under the reference fault plan, the quorum +
/// over-selection + retry policy strictly lowers the number of *wasted*
/// rounds (zero aggregated updates) relative to the default policy.
#[test]
fn quorum_policy_lowers_wasted_round_count() {
    let seed = 71;
    let spec = FleetSpec::uniform_agx(8, seed);
    let run = |aggregation: AggregationPolicy, retry: RetryPolicy| {
        FleetSimulation::builder(spec)
            .federation(FederationConfig {
                clients_per_round: 2,
                rounds: 20,
                classes: 3,
                feature_dims: 6,
                seed,
                aggregation,
                ..FederationConfig::default()
            })
            .faults(reference_faults(seed ^ 0xFA17))
            .retry(retry)
            .build()
            .run()
    };
    let baseline = run(AggregationPolicy::default(), RetryPolicy::none());
    let recovered = run(
        AggregationPolicy {
            quorum_fraction: 1.0,
            over_select_fraction: 1.0,
        },
        RetryPolicy::recovery(),
    );
    let base_wasted = baseline.metrics.wasted_rounds();
    let rec_wasted = recovered.metrics.wasted_rounds();
    assert!(
        rec_wasted < base_wasted,
        "quorum policy must strictly lower wasted rounds: {rec_wasted} vs {base_wasted}"
    );
    // Shortfall rounds are labeled, never silently frozen: whenever the
    // quorum was missed the record says so, and whatever updates did
    // arrive were still aggregated.
    for r in recovered.metrics.rounds() {
        assert_eq!(r.quorum, 2);
        assert_eq!(r.quorum_shortfall, r.quorum.saturating_sub(r.aggregated));
    }
}

/// Upload retries must rescue rounds on the reference plan and show up in
/// the metrics.
#[test]
fn retries_recover_uploads_on_the_reference_plan() {
    let seed = 5;
    let spec = FleetSpec::uniform_agx(10, seed);
    let run = |retry: RetryPolicy| {
        FleetSimulation::builder(spec)
            .federation(FederationConfig {
                clients_per_round: 5,
                rounds: 12,
                classes: 3,
                feature_dims: 6,
                seed,
                ..FederationConfig::default()
            })
            .faults(FaultPlan::new(seed ^ 0xFA17).with_upload_failures(0.4))
            .retry(retry)
            .build()
            .run()
    };
    let baseline = run(RetryPolicy::none());
    let recovered = run(RetryPolicy::recovery());
    assert!(recovered.metrics.recovered_uploads() > 0);
    let base_failures: usize = baseline
        .metrics
        .rounds()
        .iter()
        .map(|r| r.upload_failures)
        .sum();
    let rec_failures: usize = recovered
        .metrics
        .rounds()
        .iter()
        .map(|r| r.upload_failures)
        .sum();
    assert!(
        rec_failures < base_failures,
        "retries must strictly lower delivered-upload losses: {rec_failures} vs {base_failures}"
    );
}

/// Stress profile: an elevated fault plan (dropout + heavy stragglers +
/// lossy uplink) across more rounds. Gated behind the `stress` feature so
/// a plain `cargo test` stays fast; CI's stress-profile job enables it.
#[test]
#[cfg_attr(not(feature = "stress"), ignore = "enable with --features stress")]
fn stress_recovery_stack_survives_elevated_faults() {
    let seed = 97;
    let spec = FleetSpec::mixed(12, seed);
    let faults = FaultPlan::new(seed ^ 0xFA17)
        .with_dropout(0.2)
        .with_stragglers(0.5, (2.0, 6.0))
        .with_upload_failures(0.3);
    let run = |workers: usize| {
        FleetSimulation::builder(spec)
            .federation(FederationConfig {
                clients_per_round: 6,
                rounds: 15,
                classes: 3,
                feature_dims: 6,
                seed,
                aggregation: AggregationPolicy::recovery(),
                ..FederationConfig::default()
            })
            .workers(workers)
            .faults(faults)
            .retry(RetryPolicy::recovery())
            .build()
            .run()
    };
    let report = run(1);
    // Even under heavy fire the fleet keeps making progress…
    assert!(report.metrics.mean_aggregated_per_round() > 1.0);
    // …every recovery channel fires…
    assert!(report.metrics.recovered_uploads() > 0);
    assert!(report.metrics.quorum_shortfall_rounds() > 0);
    // …and the trace stays deterministic across worker counts.
    let parallel = run(8);
    assert_eq!(report.history, parallel.history);
    assert_eq!(report.metrics.to_csv(), parallel.metrics.to_csv());
}

/// Stress profile: the no-faults path is bit-identical with and without
/// the recovery machinery armed, proving the recovery layer is pay-for-
/// use (retry policies and quorum checks never perturb a healthy fleet).
#[test]
#[cfg_attr(not(feature = "stress"), ignore = "enable with --features stress")]
fn stress_recovery_machinery_is_inert_on_healthy_fleets() {
    let seed = 123;
    let spec = FleetSpec::mixed(10, seed);
    let run = |retry: RetryPolicy| {
        FleetSimulation::builder(spec)
            .federation(federation_config(seed, AggregationPolicy::none()))
            .workers(4)
            .retry(retry)
            .build()
            .run()
    };
    let plain = run(RetryPolicy::none());
    let armed = run(RetryPolicy::recovery());
    assert_eq!(plain.history, armed.history);
    assert_eq!(plain.metrics.to_csv(), armed.metrics.to_csv());
}
