//! The hierarchical aggregator's headline guarantee, property-tested:
//! **sharding is execution geometry, never semantics**. For any seed, the
//! per-round trace and the final global model are byte-identical across
//! shard counts {1, 4, 16} × worker counts {1, 2, 8} — and the fixed-point
//! accumulator that makes this possible agrees with naive float averaging
//! to quantization precision. The compression seam rides the same
//! contract: encodings are pure functions of `(update, stream seed,
//! residual)`, and error feedback conserves the signal exactly.

use bofl_fl::server::FederationConfig;
use bofl_fleet::compress::CompressedUpdate;
use bofl_fleet::prelude::*;
use bofl_fleet::scale::ScaleConfig;
use proptest::prelude::*;

fn scale_config(seed: u64, shards: usize, workers: usize, error_feedback: bool) -> ScaleConfig {
    ScaleConfig {
        fleet_size: 2_000,
        cohort: 128,
        rounds: 3,
        dim: 16,
        seed,
        shard_plan: ShardPlan::with_shards(shards),
        workers,
        error_feedback,
        ..ScaleConfig::default()
    }
}

fn run_scale(seed: u64, shards: usize, workers: usize, error_feedback: bool) -> ScaleReport {
    ScaleSimulation::builder(scale_config(seed, shards, workers, error_feedback))
        .sampler(LossStalenessSampler::default())
        .compressor(Int8Quantizer)
        .faults(
            FaultPlan::new(seed ^ 0xFA17)
                .with_dropout(0.1)
                .with_stragglers(0.15, (1.2, 2.5))
                .with_upload_failures(0.05),
        )
        .build()
        .run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Shards {1, 4, 16} × workers {1, 2, 8}: one reference run, eight
    /// challengers, every trace row and every model bit identical.
    #[test]
    fn scale_trace_and_model_are_shard_and_worker_invariant(
        seed in 0u64..1_000_000,
        error_feedback in prop::bool::ANY,
    ) {
        let reference = run_scale(seed, 1, 1, error_feedback);
        for shards in [1usize, 4, 16] {
            for workers in [1usize, 2, 8] {
                if (shards, workers) == (1, 1) {
                    continue;
                }
                let challenger = run_scale(seed, shards, workers, error_feedback);
                prop_assert_eq!(&challenger.trace, &reference.trace);
                prop_assert_eq!(
                    challenger.final_model.iter().map(|p| p.to_bits()).collect::<Vec<u64>>(),
                    reference.final_model.iter().map(|p| p.to_bits()).collect::<Vec<u64>>()
                );
            }
        }
    }

    /// The federation-level seam: a `Federation` with any shard plan
    /// reproduces the flat engine's history bit for bit.
    #[test]
    fn federation_history_is_shard_plan_invariant(seed in 0u64..1_000_000) {
        let run = |shards: Option<usize>| {
            let spec = FleetSpec::mixed(10, seed);
            let config = FederationConfig {
                clients_per_round: 4,
                rounds: 2,
                classes: 3,
                feature_dims: 6,
                seed,
                ..FederationConfig::default()
            };
            let mut builder = FleetSimulation::builder(spec).federation(config).workers(2);
            if let Some(n) = shards {
                builder = builder.shard_plan(ShardPlan::with_shards(n));
            }
            builder.build().run()
        };
        let flat = run(None);
        for shards in [1usize, 4, 16] {
            let sharded = run(Some(shards));
            prop_assert_eq!(&sharded.history, &flat.history);
            prop_assert_eq!(sharded.metrics.to_csv(), flat.metrics.to_csv());
        }
    }

    /// Quantization is a pure function of `(update, stream seed)`: the
    /// same inputs give identical bytes, and the decoded error stays
    /// within one quantization step per entry.
    #[test]
    fn int8_roundtrip_is_deterministic_and_bounded(
        update in prop::collection::vec(-100.0f64..100.0, 1..64),
        seed in 0u64..u64::MAX,
    ) {
        let (mut a, mut b) = (CompressedUpdate::new(), CompressedUpdate::new());
        Int8Quantizer.compress(&update, seed, None, &mut a);
        Int8Quantizer.compress(&update, seed, None, &mut b);
        prop_assert_eq!(&a, &b);
        let mut decoded = Vec::new();
        a.decode_into(&mut decoded);
        let max_abs = update.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let step = (max_abs / 127.0) as f32 as f64;
        for (u, d) in update.iter().zip(decoded.iter()) {
            prop_assert!((u - d).abs() <= step + 1e-9);
        }
    }

    /// Top-k error feedback conserves the signal *exactly* in f64:
    /// `sent + residual' == update + residual` bit for bit, every round,
    /// and the residual never grows without bound.
    #[test]
    fn topk_error_feedback_conserves_the_signal(
        rounds in 2usize..8,
        dim in 4usize..48,
        fraction in 0.05f64..0.9,
        seed in 0u64..u64::MAX,
    ) {
        let sparser = TopKSparsifier::new(fraction);
        let mut residual: Vec<f64> = Vec::new();
        let mut out = CompressedUpdate::new();
        let mut carried: Vec<f64> = vec![0.0; dim];
        for round in 0..rounds {
            let update: Vec<f64> = (0..dim)
                .map(|d| {
                    let h = seed ^ (round as u64) << 32 ^ d as u64;
                    let mut x = h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    x ^= x >> 29;
                    (x >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
                })
                .collect();
            let effective: Vec<f64> = update
                .iter()
                .zip(carried.iter())
                .map(|(u, r)| u + r)
                .collect();
            sparser.compress(&update, round as u64, Some(&mut residual), &mut out);
            let mut sent = Vec::new();
            out.decode_into(&mut sent);
            for ((s, r), e) in sent.iter().zip(residual.iter()).zip(effective.iter()) {
                prop_assert_eq!((s + r).to_bits(), e.to_bits());
            }
            // Residual is bounded by the largest unsent effective entry.
            let bound = effective.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            prop_assert!(residual.iter().all(|r| r.abs() <= bound + 1e-12));
            carried.clone_from(&residual);
        }
    }

    /// The fixed-point accumulator agrees with naive f64 weighted
    /// averaging to within the 2⁻³² quantization grid, at any shard count.
    #[test]
    fn fixed_point_average_matches_float_reference(
        dim in 1usize..32,
        n in 1usize..20,
        shards in 1usize..8,
        seed in 0u64..u64::MAX,
    ) {
        let clients: Vec<(Vec<f64>, u64)> = (0..n)
            .map(|i| {
                let params: Vec<f64> = (0..dim)
                    .map(|d| {
                        let mut x = (seed ^ (i as u64) << 24 ^ d as u64)
                            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
                        x ^= x >> 31;
                        (x >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0
                    })
                    .collect();
                (params, 1 + (seed >> 8 ^ i as u64) % 200)
            })
            .collect();
        let updates: Vec<(&[f64], u64)> =
            clients.iter().map(|(p, w)| (p.as_slice(), *w)).collect();
        let mut root = UpdateAccumulator::new();
        let mut scratch = UpdateAccumulator::new();
        let mut fixed = Vec::new();
        let plan = ShardPlan::with_shards(shards);
        prop_assert!(bofl_fleet::shard::aggregate_sharded(
            plan, dim, &updates, &mut root, &mut scratch, &mut fixed
        ));
        let total: u64 = clients.iter().map(|(_, w)| *w).sum();
        for d in 0..dim {
            let float: f64 = clients
                .iter()
                .map(|(p, w)| p[d] * *w as f64)
                .sum::<f64>()
                / total as f64;
            prop_assert!((fixed[d] - float).abs() < 1e-7);
        }
    }
}
