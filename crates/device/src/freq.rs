/// An operational frequency in megahertz.
///
/// A newtype (C-NEWTYPE) so CPU/GPU/memory frequencies cannot be confused
/// with plain integers or with each other's raw values in arithmetic; the
/// unit is fixed to MHz because that is the granularity of the Jetson sysfs
/// interface.
///
/// # Examples
///
/// ```
/// use bofl_device::FreqMHz;
///
/// let f = FreqMHz::new(1377);
/// assert_eq!(f.as_ghz(), 1.377);
/// assert!(FreqMHz::new(2265) > f);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FreqMHz(u32);

impl FreqMHz {
    /// Creates a frequency from a MHz value.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is zero — a 0 MHz clock is never a valid DVFS state.
    pub fn new(mhz: u32) -> Self {
        assert!(mhz > 0, "frequency must be positive");
        FreqMHz(mhz)
    }

    /// The raw MHz value.
    pub fn as_mhz(self) -> u32 {
        self.0
    }

    /// The frequency in GHz.
    pub fn as_ghz(self) -> f64 {
        f64::from(self.0) / 1000.0
    }

    /// The frequency in Hz.
    pub fn as_hz(self) -> f64 {
        f64::from(self.0) * 1e6
    }
}

impl std::fmt::Display for FreqMHz {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} MHz", self.0)
    }
}

impl From<FreqMHz> for u32 {
    fn from(f: FreqMHz) -> u32 {
        f.0
    }
}

/// An ordered table of the discrete frequencies one hardware unit supports.
///
/// Jetson boards only accept frequencies from a fixed OPP (operating
/// performance point) table; this type mirrors that. Entries are strictly
/// increasing.
///
/// # Examples
///
/// ```
/// use bofl_device::FreqTable;
///
/// let t = FreqTable::linspace_mhz(420, 2265, 25); // the AGX CPU table
/// assert_eq!(t.len(), 25);
/// assert_eq!(t.min().as_mhz(), 420);
/// assert_eq!(t.max().as_mhz(), 2265);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FreqTable {
    steps: Vec<FreqMHz>,
}

impl FreqTable {
    /// Builds a table from explicit MHz steps.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty or not strictly increasing.
    pub fn from_mhz(steps: &[u32]) -> Self {
        assert!(!steps.is_empty(), "frequency table must not be empty");
        assert!(
            steps.windows(2).all(|w| w[0] < w[1]),
            "frequency table must be strictly increasing"
        );
        FreqTable {
            steps: steps.iter().map(|&s| FreqMHz::new(s)).collect(),
        }
    }

    /// Builds an evenly spaced table of `n` steps from `lo` to `hi` MHz
    /// inclusive (rounded to whole MHz).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `hi <= lo`.
    pub fn linspace_mhz(lo: u32, hi: u32, n: usize) -> Self {
        assert!(n >= 2, "need at least two steps");
        assert!(hi > lo, "hi must exceed lo");
        let steps: Vec<u32> = (0..n)
            .map(|i| {
                let t = i as f64 / (n - 1) as f64;
                (f64::from(lo) + t * f64::from(hi - lo)).round() as u32
            })
            .collect();
        FreqTable::from_mhz(&steps)
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `false` always (the table is guaranteed non-empty), provided for
    /// API completeness.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The lowest frequency.
    pub fn min(&self) -> FreqMHz {
        self.steps[0]
    }

    /// The highest frequency.
    pub fn max(&self) -> FreqMHz {
        *self.steps.last().expect("table is non-empty")
    }

    /// The frequency at position `i`.
    ///
    /// Returns `None` if `i` is out of range.
    pub fn get(&self, i: usize) -> Option<FreqMHz> {
        self.steps.get(i).copied()
    }

    /// Position of `f` in the table, if present.
    pub fn position(&self, f: FreqMHz) -> Option<usize> {
        self.steps.iter().position(|&s| s == f)
    }

    /// The table entry closest to `f` (ties resolve to the lower step).
    pub fn nearest(&self, f: FreqMHz) -> FreqMHz {
        *self
            .steps
            .iter()
            .min_by_key(|s| {
                let d = s.as_mhz().abs_diff(f.as_mhz());
                (d, s.as_mhz())
            })
            .expect("table is non-empty")
    }

    /// Iterates over the steps in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = FreqMHz> + '_ {
        self.steps.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freq_basics() {
        let f = FreqMHz::new(1500);
        assert_eq!(f.as_mhz(), 1500);
        assert_eq!(f.as_ghz(), 1.5);
        assert_eq!(f.as_hz(), 1.5e9);
        assert_eq!(u32::from(f), 1500);
        assert_eq!(f.to_string(), "1500 MHz");
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn zero_freq_rejected() {
        let _ = FreqMHz::new(0);
    }

    #[test]
    fn table_from_mhz() {
        let t = FreqTable::from_mhz(&[100, 200, 300]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.min().as_mhz(), 100);
        assert_eq!(t.max().as_mhz(), 300);
        assert_eq!(t.get(1), Some(FreqMHz::new(200)));
        assert_eq!(t.get(3), None);
        assert_eq!(t.position(FreqMHz::new(200)), Some(1));
        assert_eq!(t.position(FreqMHz::new(250)), None);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn table_rejects_unsorted() {
        let _ = FreqTable::from_mhz(&[200, 100]);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn table_rejects_empty() {
        let _ = FreqTable::from_mhz(&[]);
    }

    #[test]
    fn linspace_endpoints() {
        let t = FreqTable::linspace_mhz(420, 2265, 25);
        assert_eq!(t.len(), 25);
        assert_eq!(t.min().as_mhz(), 420);
        assert_eq!(t.max().as_mhz(), 2265);
    }

    #[test]
    fn nearest_rounds() {
        let t = FreqTable::from_mhz(&[100, 200, 300]);
        assert_eq!(t.nearest(FreqMHz::new(149)).as_mhz(), 100);
        assert_eq!(t.nearest(FreqMHz::new(151)).as_mhz(), 200);
        assert_eq!(t.nearest(FreqMHz::new(150)).as_mhz(), 100); // tie → lower
        assert_eq!(t.nearest(FreqMHz::new(999)).as_mhz(), 300);
    }

    #[test]
    fn iter_is_increasing() {
        let t = FreqTable::linspace_mhz(100, 1000, 7);
        let v: Vec<u32> = t.iter().map(|f| f.as_mhz()).collect();
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }
}
