/// The ground-truth cost of running one minibatch job under a DVFS
/// configuration: per-minibatch latency `T(x)` in seconds and energy
/// `E(x)` in joules (the paper's two objective functions, §3.1).
///
/// # Examples
///
/// ```
/// use bofl_device::JobCost;
///
/// let a = JobCost { latency_s: 0.20, energy_j: 4.0 };
/// let b = JobCost { latency_s: 0.25, energy_j: 5.0 };
/// assert!(a.dominates(&b));
/// assert!(!b.dominates(&a));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct JobCost {
    /// Execution latency per minibatch, seconds.
    pub latency_s: f64,
    /// Energy consumed per minibatch, joules.
    pub energy_j: f64,
}

impl JobCost {
    /// Pareto dominance in the (energy, latency) space, using the paper's
    /// §3.2 definition: `a` dominates `b` iff `a` is no worse in both
    /// objectives and strictly better in at least one.
    pub fn dominates(&self, other: &JobCost) -> bool {
        let no_worse = self.energy_j <= other.energy_j && self.latency_s <= other.latency_s;
        let better = self.energy_j < other.energy_j || self.latency_s < other.latency_s;
        no_worse && better
    }

    /// The cost as an `(energy, latency)` point in objective space.
    pub fn as_objectives(&self) -> [f64; 2] {
        [self.energy_j, self.latency_s]
    }

    /// Average power over the job, watts.
    pub fn average_power_w(&self) -> f64 {
        if self.latency_s > 0.0 {
            self.energy_j / self.latency_s
        } else {
            0.0
        }
    }
}

impl std::fmt::Display for JobCost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4} s / {:.3} J", self.latency_s, self.energy_j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_is_strict() {
        let a = JobCost {
            latency_s: 1.0,
            energy_j: 1.0,
        };
        // Equal points never dominate each other.
        assert!(!a.dominates(&a));
        // Strictly better in one axis, equal in the other → dominates.
        let b = JobCost {
            latency_s: 1.0,
            energy_j: 2.0,
        };
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        // Trade-off points are incomparable.
        let c = JobCost {
            latency_s: 0.5,
            energy_j: 2.0,
        };
        assert!(!a.dominates(&c));
        assert!(!c.dominates(&a));
    }

    #[test]
    fn helpers() {
        let a = JobCost {
            latency_s: 0.5,
            energy_j: 10.0,
        };
        assert_eq!(a.as_objectives(), [10.0, 0.5]);
        assert_eq!(a.average_power_w(), 20.0);
        assert!(a.to_string().contains("10.000 J"));
        let z = JobCost {
            latency_s: 0.0,
            energy_j: 1.0,
        };
        assert_eq!(z.average_power_w(), 0.0);
    }
}
