/// A virtual monotonic clock for the simulated device.
///
/// All simulation time in the reproduction is virtual: jobs "take"
/// `T(x)` seconds by advancing this clock, so a 100-round FL experiment
/// that would occupy hours of wall-clock time on real hardware completes in
/// milliseconds. The clock is deliberately *not* shared or thread-safe —
/// each simulated device owns one.
///
/// # Examples
///
/// ```
/// use bofl_device::VirtualClock;
///
/// let mut clock = VirtualClock::new();
/// clock.advance(1.5);
/// clock.advance(0.25);
/// assert_eq!(clock.now_s(), 1.75);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VirtualClock {
    now_s: f64,
}

impl VirtualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        VirtualClock { now_s: 0.0 }
    }

    /// Current virtual time in seconds since clock creation.
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Advances the clock by `dt` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative or non-finite — virtual time is
    /// monotonic by construction.
    pub fn advance(&mut self, dt_s: f64) {
        assert!(
            dt_s.is_finite() && dt_s >= 0.0,
            "clock must advance by a non-negative finite duration, got {dt_s}"
        );
        self.now_s += dt_s;
    }

    /// Resets the clock to zero (e.g. at the start of a new experiment).
    pub fn reset(&mut self) {
        self.now_s = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now_s(), 0.0);
        c.advance(2.0);
        c.advance(0.0);
        assert_eq!(c.now_s(), 2.0);
        c.reset();
        assert_eq!(c.now_s(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_steps() {
        VirtualClock::new().advance(-1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_nan_steps() {
        VirtualClock::new().advance(f64::NAN);
    }
}
