use crate::{
    ConfigSpace, CpuModel, DvfsConfig, FreqTable, GpuModel, JobCost, LatencyBreakdown,
    LatencyModel, MemoryModel, PowerModel, PowerSensor, RailModel, SensorSpec,
};
use bofl_workload::{FlTask, GpuArch};
use rand::Rng;

/// One row of a full offline profile: a configuration and its ground-truth
/// cost (the input the Oracle baseline is allowed to use).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProfileEntry {
    /// The profiled configuration.
    pub config: DvfsConfig,
    /// Its noise-free cost.
    pub cost: JobCost,
}

/// A simulated DVFS-capable edge device.
///
/// Bundles the configuration space, latency model, power model and power
/// sensor, and exposes the two views BoFL distinguishes:
///
/// - [`Device::true_cost`] — the noise-free blackbox `(T(x), E(x))`,
///   used by the simulator itself and by the Oracle baseline;
/// - [`Device::run_job`] — one *measured* job execution including latency
///   jitter and sensor noise, which is all a real controller ever sees.
///
/// # Examples
///
/// ```
/// use bofl_device::Device;
/// use bofl_workload::{FlTask, TaskKind, Testbed};
///
/// let agx = Device::jetson_agx();
/// assert_eq!(agx.config_space().len(), 2100); // Table 1
/// let task = FlTask::preset(TaskKind::ImdbLstm, Testbed::JetsonAgx);
/// let tmin = agx.round_latency_at_max(&task);
/// assert!(tmin > 30.0 && tmin < 60.0); // Table 2: 46.1 s
/// ```
#[derive(Debug, Clone)]
pub struct Device {
    name: String,
    space: ConfigSpace,
    latency: LatencyModel,
    power: PowerModel,
    sensor: PowerSensor,
    latency_jitter: f64,
    transition_latency_s: f64,
}

impl Device {
    /// Starts building a custom device.
    pub fn builder(name: impl Into<String>) -> DeviceBuilder {
        DeviceBuilder::new(name)
    }

    /// The Jetson AGX Xavier preset (Table 1 of the paper).
    ///
    /// Frequency grids: CPU 0.42–2.27 GHz in 25 steps, GPU 0.11–1.38 GHz in
    /// 14 steps, EMC 0.20–2.13 GHz in 6 steps → 2100 configurations.
    /// Latency/power constants are calibrated so `T_min` per task matches
    /// the paper's Table 2 within a few percent.
    pub fn jetson_agx() -> Device {
        Device::builder("Jetson AGX")
            .cpu_table(FreqTable::linspace_mhz(420, 2265, 25))
            .gpu_table(FreqTable::linspace_mhz(114, 1377, 14))
            .mem_table(FreqTable::linspace_mhz(204, 2133, 6))
            .cpu_model(CpuModel {
                ipc_factor: 1.0,
                pipeline_cores: 4.0,
            })
            .gpu_model(GpuModel {
                arch: GpuArch::Volta,
                peak_flops_per_cycle: 1024.0,
            })
            .memory_model(MemoryModel {
                bytes_per_cycle: 40.0,
            })
            .roofline_overlap(0.15)
            .fixed_overhead_s(0.018)
            .cpu_rail(RailModel {
                coeff: 2.67,
                v0: 0.55,
                v1: 0.30,
                idle_fraction: 0.25,
            })
            .gpu_rail(RailModel {
                coeff: 6.6,
                v0: 0.55,
                v1: 0.45,
                idle_fraction: 0.25,
            })
            .mem_rail(RailModel {
                coeff: 3.1,
                v0: 0.60,
                v1: 0.15,
                idle_fraction: 0.25,
            })
            .static_power_w(3.6)
            .build()
    }

    /// The Jetson TX2 preset (Table 1 of the paper).
    ///
    /// Frequency grids: CPU 0.35–2.04 GHz in 12 steps, GPU 0.11–1.30 GHz in
    /// 13 steps, EMC 0.41–1.87 GHz in 6 steps → 936 configurations.
    pub fn jetson_tx2() -> Device {
        Device::builder("Jetson TX2")
            .cpu_table(FreqTable::linspace_mhz(345, 2035, 12))
            .gpu_table(FreqTable::linspace_mhz(114, 1300, 13))
            .mem_table(FreqTable::linspace_mhz(408, 1866, 6))
            .cpu_model(CpuModel {
                ipc_factor: 0.44,
                pipeline_cores: 3.0,
            })
            .gpu_model(GpuModel {
                arch: GpuArch::Pascal,
                peak_flops_per_cycle: 512.0,
            })
            .memory_model(MemoryModel {
                bytes_per_cycle: 13.4,
            })
            .roofline_overlap(0.15)
            .fixed_overhead_s(0.035)
            .cpu_rail(RailModel {
                coeff: 1.40,
                v0: 0.55,
                v1: 0.30,
                idle_fraction: 0.25,
            })
            .gpu_rail(RailModel {
                coeff: 3.6,
                v0: 0.55,
                v1: 0.45,
                idle_fraction: 0.25,
            })
            .mem_rail(RailModel {
                coeff: 1.55,
                v0: 0.60,
                v1: 0.15,
                idle_fraction: 0.25,
            })
            .static_power_w(2.2)
            .build()
    }

    /// Device name, e.g. `"Jetson AGX"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The relative standard deviation of per-job latency jitter.
    pub fn latency_jitter(&self) -> f64 {
        self.latency_jitter
    }

    /// Returns this device with a different per-job latency jitter — the
    /// hook fleet generation uses to give every sampled client its own
    /// thermal/interference profile without rebuilding the full model.
    ///
    /// # Panics
    ///
    /// Panics if `jitter < 0`.
    #[must_use]
    pub fn with_latency_jitter(mut self, jitter: f64) -> Device {
        assert!(jitter >= 0.0, "latency jitter must be >= 0");
        self.latency_jitter = jitter;
        self
    }

    /// Returns this device with a different DVFS transition latency
    /// (per-client governor/firmware variation in a heterogeneous fleet).
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative or non-finite.
    #[must_use]
    pub fn with_transition_latency_s(mut self, seconds: f64) -> Device {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "transition latency must be finite and >= 0"
        );
        self.transition_latency_s = seconds;
        self
    }

    /// The discrete DVFS configuration space.
    pub fn config_space(&self) -> &ConfigSpace {
        &self.space
    }

    /// The latency model (exposed for diagnostics and benches).
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// The power model (exposed for diagnostics and benches).
    pub fn power_model(&self) -> &PowerModel {
        &self.power
    }

    /// The power sensor used by measured executions.
    pub fn sensor(&self) -> &PowerSensor {
        &self.sensor
    }

    /// Latency of one frequency transition, seconds.
    pub fn transition_latency_s(&self) -> f64 {
        self.transition_latency_s
    }

    /// Latency decomposition of one minibatch of `task` at `x` (noise-free).
    pub fn latency_breakdown(&self, task: &FlTask, x: DvfsConfig) -> LatencyBreakdown {
        self.latency.evaluate(task, x)
    }

    /// The noise-free blackbox objectives `(T(x), E(x))` for one minibatch.
    pub fn true_cost(&self, task: &FlTask, x: DvfsConfig) -> JobCost {
        let lat = self.latency.evaluate(task, x);
        let pow = self.power.evaluate(x, &lat);
        JobCost {
            latency_s: lat.total_s,
            energy_j: pow.total_w * lat.total_s,
        }
    }

    /// Executes one minibatch job at `x` and returns the *measured* cost:
    /// true latency with multiplicative jitter, and energy read from the
    /// simulated sensor. This is the only view a pace controller gets.
    pub fn run_job(&self, task: &FlTask, x: DvfsConfig, rng: &mut impl Rng) -> JobCost {
        let truth = self.true_cost(task, x);
        let jitter = 1.0 + self.latency_jitter * standard_normal(rng);
        let latency_s = truth.latency_s * jitter.max(0.5);
        let power_w = truth.energy_j / truth.latency_s;
        let energy_j = self.sensor.measure_energy(power_w, latency_s, rng);
        JobCost {
            latency_s,
            energy_j,
        }
    }

    /// Round latency when every job runs at `x_max`: the paper's
    /// `T_min = T(x_max) × W` (Table 2).
    pub fn round_latency_at_max(&self, task: &FlTask) -> f64 {
        self.true_cost(task, self.space.x_max()).latency_s * task.jobs_per_round() as f64
    }

    /// Profiles the *entire* configuration space offline (what the Oracle
    /// baseline requires, and what the paper's Fig. 11 "actual Pareto
    /// front" comes from). Expensive on purpose: it evaluates every grid
    /// point.
    pub fn profile_all(&self, task: &FlTask) -> Vec<ProfileEntry> {
        self.space
            .iter()
            .map(|config| ProfileEntry {
                config,
                cost: self.true_cost(task, config),
            })
            .collect()
    }
}

/// Builder for custom [`Device`]s (C-BUILDER).
///
/// All parameters have sensible defaults except the three frequency tables,
/// which must be provided.
///
/// # Examples
///
/// ```
/// use bofl_device::{Device, FreqTable};
///
/// let dev = Device::builder("MyBoard")
///     .cpu_table(FreqTable::linspace_mhz(500, 2000, 8))
///     .gpu_table(FreqTable::linspace_mhz(200, 1000, 8))
///     .mem_table(FreqTable::linspace_mhz(400, 1600, 4))
///     .build();
/// assert_eq!(dev.config_space().len(), 256);
/// ```
#[derive(Debug, Clone)]
pub struct DeviceBuilder {
    name: String,
    cpu_table: Option<FreqTable>,
    gpu_table: Option<FreqTable>,
    mem_table: Option<FreqTable>,
    cpu_model: CpuModel,
    gpu_model: GpuModel,
    memory_model: MemoryModel,
    roofline_overlap: f64,
    fixed_overhead_s: f64,
    cpu_rail: RailModel,
    gpu_rail: RailModel,
    mem_rail: RailModel,
    static_power_w: f64,
    sensor_spec: SensorSpec,
    latency_jitter: f64,
    transition_latency_s: f64,
}

impl DeviceBuilder {
    fn new(name: impl Into<String>) -> Self {
        DeviceBuilder {
            name: name.into(),
            cpu_table: None,
            gpu_table: None,
            mem_table: None,
            cpu_model: CpuModel {
                ipc_factor: 1.0,
                pipeline_cores: 4.0,
            },
            gpu_model: GpuModel {
                arch: GpuArch::Volta,
                peak_flops_per_cycle: 512.0,
            },
            memory_model: MemoryModel {
                bytes_per_cycle: 20.0,
            },
            roofline_overlap: 0.15,
            fixed_overhead_s: 0.02,
            cpu_rail: RailModel {
                coeff: 3.0,
                v0: 0.55,
                v1: 0.22,
                idle_fraction: 0.25,
            },
            gpu_rail: RailModel {
                coeff: 6.0,
                v0: 0.55,
                v1: 0.33,
                idle_fraction: 0.25,
            },
            mem_rail: RailModel {
                coeff: 2.5,
                v0: 0.60,
                v1: 0.10,
                idle_fraction: 0.25,
            },
            static_power_w: 3.0,
            sensor_spec: SensorSpec::default(),
            latency_jitter: 0.01,
            transition_latency_s: 0.001,
        }
    }

    /// Sets the CPU frequency table (required).
    pub fn cpu_table(mut self, t: FreqTable) -> Self {
        self.cpu_table = Some(t);
        self
    }

    /// Sets the GPU frequency table (required).
    pub fn gpu_table(mut self, t: FreqTable) -> Self {
        self.gpu_table = Some(t);
        self
    }

    /// Sets the memory-controller frequency table (required).
    pub fn mem_table(mut self, t: FreqTable) -> Self {
        self.mem_table = Some(t);
        self
    }

    /// Sets the CPU performance parameters.
    pub fn cpu_model(mut self, m: CpuModel) -> Self {
        self.cpu_model = m;
        self
    }

    /// Sets the GPU performance parameters.
    pub fn gpu_model(mut self, m: GpuModel) -> Self {
        self.gpu_model = m;
        self
    }

    /// Sets the memory performance parameters.
    pub fn memory_model(mut self, m: MemoryModel) -> Self {
        self.memory_model = m;
        self
    }

    /// Sets the roofline overlap coefficient γ.
    pub fn roofline_overlap(mut self, g: f64) -> Self {
        self.roofline_overlap = g;
        self
    }

    /// Sets the fixed per-minibatch overhead in seconds.
    pub fn fixed_overhead_s(mut self, s: f64) -> Self {
        self.fixed_overhead_s = s;
        self
    }

    /// Sets the CPU rail power parameters.
    pub fn cpu_rail(mut self, r: RailModel) -> Self {
        self.cpu_rail = r;
        self
    }

    /// Sets the GPU rail power parameters.
    pub fn gpu_rail(mut self, r: RailModel) -> Self {
        self.gpu_rail = r;
        self
    }

    /// Sets the memory rail power parameters.
    pub fn mem_rail(mut self, r: RailModel) -> Self {
        self.mem_rail = r;
        self
    }

    /// Sets the constant board power in watts.
    pub fn static_power_w(mut self, w: f64) -> Self {
        self.static_power_w = w;
        self
    }

    /// Sets the power-sensor characteristics.
    pub fn sensor_spec(mut self, s: SensorSpec) -> Self {
        self.sensor_spec = s;
        self
    }

    /// Sets the relative standard deviation of per-job latency jitter.
    pub fn latency_jitter(mut self, j: f64) -> Self {
        self.latency_jitter = j;
        self
    }

    /// Sets the DVFS transition latency in seconds.
    pub fn transition_latency_s(mut self, s: f64) -> Self {
        self.transition_latency_s = s;
        self
    }

    /// Builds the device.
    ///
    /// # Panics
    ///
    /// Panics if any of the three frequency tables is missing, or if the
    /// jitter is negative.
    pub fn build(self) -> Device {
        let cpu = self.cpu_table.expect("cpu_table is required");
        let gpu = self.gpu_table.expect("gpu_table is required");
        let mem = self.mem_table.expect("mem_table is required");
        assert!(self.latency_jitter >= 0.0, "latency jitter must be >= 0");
        Device {
            name: self.name,
            space: ConfigSpace::new(cpu, gpu, mem),
            latency: LatencyModel {
                cpu: self.cpu_model,
                gpu: self.gpu_model,
                mem: self.memory_model,
                roofline_overlap: self.roofline_overlap,
                fixed_overhead_s: self.fixed_overhead_s,
            },
            power: PowerModel {
                cpu: self.cpu_rail,
                gpu: self.gpu_rail,
                mem: self.mem_rail,
                static_w: self.static_power_w,
            },
            sensor: PowerSensor::new(self.sensor_spec),
            latency_jitter: self.latency_jitter,
            transition_latency_s: self.transition_latency_s,
        }
    }
}

/// Standard normal via Box–Muller (local copy; see `sensor.rs`).
fn standard_normal(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bofl_workload::{TaskKind, Testbed};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn grid_sizes_match_table1() {
        assert_eq!(Device::jetson_agx().config_space().len(), 2100);
        assert_eq!(Device::jetson_tx2().config_space().len(), 936);
    }

    #[test]
    fn xmax_is_fastest_everywhere() {
        let dev = Device::jetson_agx();
        let task = FlTask::preset(TaskKind::Cifar10Vit, Testbed::JetsonAgx);
        let tmax = dev.true_cost(&task, dev.config_space().x_max()).latency_s;
        // Sample a diagonal slice of the space; nothing should beat x_max.
        for i in (0..dev.config_space().len()).step_by(97) {
            let x = dev.config_space().get(crate::ConfigIndex(i)).unwrap();
            assert!(
                dev.true_cost(&task, x).latency_s >= tmax - 1e-12,
                "{x} beat x_max"
            );
        }
    }

    #[test]
    fn measured_cost_tracks_truth() {
        let dev = Device::jetson_agx();
        let task = FlTask::preset(TaskKind::ImagenetResnet50, Testbed::JetsonAgx);
        let x = dev.config_space().x_max();
        let truth = dev.true_cost(&task, x);
        let mut rng = StdRng::seed_from_u64(11);
        let mut lat = 0.0;
        let mut en = 0.0;
        let n = 200;
        for _ in 0..n {
            let m = dev.run_job(&task, x, &mut rng);
            lat += m.latency_s;
            en += m.energy_j;
        }
        let lat = lat / n as f64;
        let en = en / n as f64;
        assert!((lat / truth.latency_s - 1.0).abs() < 0.02, "latency bias");
        assert!((en / truth.energy_j - 1.0).abs() < 0.03, "energy bias");
    }

    #[test]
    fn profile_covers_space() {
        let dev = Device::builder("tiny")
            .cpu_table(FreqTable::from_mhz(&[500, 1000]))
            .gpu_table(FreqTable::from_mhz(&[200, 400]))
            .mem_table(FreqTable::from_mhz(&[600, 1200]))
            .build();
        let task = FlTask::preset(TaskKind::Cifar10Vit, Testbed::JetsonAgx);
        let profile = dev.profile_all(&task);
        assert_eq!(profile.len(), 8);
        assert!(profile.iter().all(|p| p.cost.latency_s > 0.0));
        assert!(profile.iter().all(|p| p.cost.energy_j > 0.0));
    }

    #[test]
    fn energy_surface_is_nonmonotonic_in_cpu() {
        // Paper Fig. 4b: for at least one workload the energy-vs-CPU-freq
        // curve is not monotonic across the three tasks: LSTM decreases,
        // ResNet increases.
        let dev = Device::jetson_agx();
        let space = dev.config_space();
        let sweep = |kind: TaskKind| -> Vec<f64> {
            let task = FlTask::preset(kind, Testbed::JetsonAgx);
            space
                .cpu_table()
                .iter()
                .map(|c| {
                    dev.true_cost(
                        &task,
                        DvfsConfig::new(c, space.gpu_table().max(), space.mem_table().max()),
                    )
                    .energy_j
                })
                .collect()
        };
        let lstm = sweep(TaskKind::ImdbLstm);
        let resnet = sweep(TaskKind::ImagenetResnet50);
        assert!(
            lstm.first().unwrap() > lstm.last().unwrap(),
            "LSTM energy should fall with CPU frequency"
        );
        assert!(
            resnet.first().unwrap() < resnet.last().unwrap(),
            "ResNet energy should rise with CPU frequency"
        );
    }

    #[test]
    #[should_panic(expected = "cpu_table is required")]
    fn builder_requires_tables() {
        let _ = Device::builder("incomplete").build();
    }

    #[test]
    fn jitter_and_transition_overrides() {
        let dev = Device::jetson_agx()
            .with_latency_jitter(0.07)
            .with_transition_latency_s(0.004);
        assert_eq!(dev.latency_jitter(), 0.07);
        assert_eq!(dev.transition_latency_s(), 0.004);
        // The deterministic cost model is untouched by jitter overrides.
        let task = FlTask::preset(TaskKind::Cifar10Vit, Testbed::JetsonAgx);
        let base = Device::jetson_agx().true_cost(&task, dev.config_space().x_max());
        let tuned = dev.true_cost(&task, dev.config_space().x_max());
        assert_eq!(base, tuned);
        // But measured executions spread further.
        let mut rng = StdRng::seed_from_u64(4);
        let x = dev.config_space().x_max();
        let spread = |d: &Device, rng: &mut StdRng| -> f64 {
            let costs: Vec<f64> = (0..200)
                .map(|_| d.run_job(&task, x, rng).latency_s)
                .collect();
            let mean = costs.iter().sum::<f64>() / costs.len() as f64;
            costs.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / costs.len() as f64
        };
        let calm = spread(&Device::jetson_agx(), &mut rng);
        let hot = spread(&dev, &mut rng);
        assert!(hot > calm, "higher jitter must widen latency spread");
    }
}
