use crate::{DvfsConfig, LatencyBreakdown};

/// DVFS power parameters of one voltage rail (CPU, GPU or memory).
///
/// Dynamic CMOS power is `C·V²·f`; on Jetson boards the regulator raises
/// voltage roughly linearly with frequency over the usable range, so each
/// rail is modeled as
///
/// ```text
/// P(f, u) = coeff · f_GHz · V(f)² · (idle_fraction + (1 − idle_fraction) · u)
/// V(f)    = v0 + v1 · f_GHz
/// ```
///
/// where `u ∈ [0, 1]` is the rail's utilization during the job. The
/// `idle_fraction` term models clock-tree and leakage power that is paid
/// whenever the rail is powered at that frequency, busy or not — the reason
/// "race-to-idle" sometimes beats "slow-and-steady" and the energy surface
/// is non-monotonic (paper Fig. 3b).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RailModel {
    /// Effective switched capacitance, in watts per (GHz·V²).
    pub coeff: f64,
    /// Voltage intercept in volts.
    pub v0: f64,
    /// Voltage slope in volts per GHz.
    pub v1: f64,
    /// Fraction of dynamic power drawn even when idle at this frequency.
    pub idle_fraction: f64,
}

impl RailModel {
    /// Rail voltage at frequency `f_ghz`.
    pub fn voltage(&self, f_ghz: f64) -> f64 {
        self.v0 + self.v1 * f_ghz
    }

    /// Rail power at frequency `f_ghz` and utilization `u` (clamped to
    /// `[0, 1]`).
    pub fn power(&self, f_ghz: f64, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        let v = self.voltage(f_ghz);
        self.coeff * f_ghz * v * v * (self.idle_fraction + (1.0 - self.idle_fraction) * u)
    }
}

/// Average power decomposition over one minibatch, in watts.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PowerBreakdown {
    /// CPU rail power.
    pub cpu_w: f64,
    /// GPU rail power.
    pub gpu_w: f64,
    /// Memory rail power.
    pub mem_w: f64,
    /// Constant board power (SoC infrastructure, storage, sensors).
    pub static_w: f64,
    /// Total average power.
    pub total_w: f64,
}

/// The whole-board power model `P(x, utilization)`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PowerModel {
    /// CPU rail parameters.
    pub cpu: RailModel,
    /// GPU rail parameters.
    pub gpu: RailModel,
    /// Memory rail parameters.
    pub mem: RailModel,
    /// Constant board power in watts.
    pub static_w: f64,
}

impl PowerModel {
    /// Average power over a minibatch whose execution produced `lat`.
    pub fn evaluate(&self, x: DvfsConfig, lat: &LatencyBreakdown) -> PowerBreakdown {
        let cpu_w = self.cpu.power(x.cpu.as_ghz(), lat.cpu_utilization());
        let gpu_w = self.gpu.power(x.gpu.as_ghz(), lat.gpu_utilization());
        let mem_w = self.mem.power(x.mem.as_ghz(), lat.mem_utilization());
        PowerBreakdown {
            cpu_w,
            gpu_w,
            mem_w,
            static_w: self.static_w,
            total_w: cpu_w + gpu_w + mem_w + self.static_w,
        }
    }

    /// Board power when fully idle at configuration `x` (used to charge
    /// the energy cost of the MBO computation window in Fig. 13).
    pub fn idle_power(&self, x: DvfsConfig) -> f64 {
        self.static_w
            + self.cpu.power(x.cpu.as_ghz(), 0.0)
            + self.gpu.power(x.gpu.as_ghz(), 0.0)
            + self.mem.power(x.mem.as_ghz(), 0.0)
    }

    /// Board power with the CPU fully busy and GPU/memory idle at `x`
    /// (the state during on-device MBO computation).
    pub fn cpu_busy_power(&self, x: DvfsConfig) -> f64 {
        self.static_w
            + self.cpu.power(x.cpu.as_ghz(), 1.0)
            + self.gpu.power(x.gpu.as_ghz(), 0.0)
            + self.mem.power(x.mem.as_ghz(), 0.2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CpuModel, FreqMHz, GpuModel, LatencyModel, MemoryModel};
    use bofl_workload::{FlTask, GpuArch, TaskKind, Testbed};

    fn rail() -> RailModel {
        RailModel {
            coeff: 9.0,
            v0: 0.55,
            v1: 0.33,
            idle_fraction: 0.25,
        }
    }

    fn pm() -> PowerModel {
        PowerModel {
            cpu: RailModel {
                coeff: 3.68,
                v0: 0.55,
                v1: 0.22,
                idle_fraction: 0.25,
            },
            gpu: rail(),
            mem: RailModel {
                coeff: 3.5,
                v0: 0.6,
                v1: 0.1,
                idle_fraction: 0.25,
            },
            static_w: 4.0,
        }
    }

    #[test]
    fn power_monotonic_in_frequency() {
        let r = rail();
        let mut prev = 0.0;
        for f in [0.2, 0.5, 0.9, 1.4] {
            let p = r.power(f, 0.8);
            assert!(p > prev, "power must rise with frequency");
            prev = p;
        }
    }

    #[test]
    fn power_monotonic_in_utilization() {
        let r = rail();
        assert!(r.power(1.0, 0.9) > r.power(1.0, 0.1));
        // clamping
        assert_eq!(r.power(1.0, 1.5), r.power(1.0, 1.0));
        assert_eq!(r.power(1.0, -0.5), r.power(1.0, 0.0));
    }

    #[test]
    fn idle_power_is_positive_but_smaller() {
        let r = rail();
        let idle = r.power(1.0, 0.0);
        let busy = r.power(1.0, 1.0);
        assert!(idle > 0.0);
        assert!(idle < busy);
        assert!((idle / busy - 0.25).abs() < 1e-12);
    }

    #[test]
    fn voltage_is_affine() {
        let r = rail();
        assert!((r.voltage(1.377) - (0.55 + 0.33 * 1.377)).abs() < 1e-12);
    }

    #[test]
    fn breakdown_sums() {
        let pm = pm();
        let lm = LatencyModel {
            cpu: CpuModel {
                ipc_factor: 1.0,
                pipeline_cores: 4.0,
            },
            gpu: GpuModel {
                arch: GpuArch::Volta,
                peak_flops_per_cycle: 1024.0,
            },
            mem: MemoryModel {
                bytes_per_cycle: 40.0,
            },
            roofline_overlap: 0.15,
            fixed_overhead_s: 0.018,
        };
        let task = FlTask::preset(TaskKind::Cifar10Vit, Testbed::JetsonAgx);
        let x = DvfsConfig::new(FreqMHz::new(2265), FreqMHz::new(1377), FreqMHz::new(2133));
        let lat = lm.evaluate(&task, x);
        let p = pm.evaluate(x, &lat);
        assert!((p.total_w - (p.cpu_w + p.gpu_w + p.mem_w + p.static_w)).abs() < 1e-12);
        // A busy AGX should land in a plausible power envelope.
        assert!(p.total_w > 10.0 && p.total_w < 40.0, "total {}", p.total_w);
        assert!(pm.idle_power(x) < p.total_w);
        assert!(pm.cpu_busy_power(x) > pm.idle_power(x));
    }
}
