use crate::{ConfigSpace, DvfsConfig};
use std::error::Error;
use std::fmt;

/// Error returned by DVFS actuation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ActuatorError {
    /// The requested configuration is not on the device's frequency grid.
    OffGrid {
        /// The rejected configuration.
        requested: DvfsConfig,
    },
}

impl fmt::Display for ActuatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActuatorError::OffGrid { requested } => {
                write!(f, "configuration {requested} is not on the device grid")
            }
        }
    }
}

impl Error for ActuatorError {}

/// Abstraction over the mechanism that applies DVFS configurations.
///
/// On real Jetson hardware this is implemented by writing MHz values into
/// sysfs files such as `/sys/devices/*/devfreq/*/min_freq`; in the
/// reproduction [`SimulatedActuator`] models the same interface including
/// the (small) latency of a frequency transition. BoFL's DVFS controller
/// (`bofl::controller`) only speaks this trait, so it would drive real
/// sysfs hardware unchanged.
pub trait DvfsActuator {
    /// Applies a configuration, returning the transition latency in
    /// seconds (zero when the configuration is unchanged).
    ///
    /// # Errors
    ///
    /// Returns [`ActuatorError::OffGrid`] if `x` is not a valid grid point
    /// for this device.
    fn apply(&mut self, x: DvfsConfig) -> Result<f64, ActuatorError>;

    /// The currently applied configuration.
    fn current(&self) -> DvfsConfig;

    /// Renders the sysfs write operations that would realize `x` on real
    /// hardware (diagnostic; mirrors the paper's §5.2 footnote 6).
    fn sysfs_script(&self, x: DvfsConfig) -> String {
        format!(
            "echo {} > /sys/devices/system/cpu/cpufreq/policy0/scaling_max_freq\n\
             echo {} > /sys/devices/gpu.0/devfreq/17000000.gv11b/max_freq\n\
             echo {} > /sys/kernel/debug/bpmp/debug/clk/emc/rate\n",
            x.cpu.as_mhz() as u64 * 1000,
            x.gpu.as_mhz() as u64 * 1_000_000,
            x.mem.as_mhz() as u64 * 1_000_000,
        )
    }
}

/// Software model of the Jetson DVFS knobs.
///
/// Frequency transitions on Jetson boards take on the order of a
/// millisecond (regulator settling plus OPP table switch); the simulated
/// actuator charges `transition_latency_s` whenever any axis changes.
///
/// # Examples
///
/// ```
/// use bofl_device::{ConfigSpace, DvfsActuator, FreqTable, SimulatedActuator};
///
/// let space = ConfigSpace::new(
///     FreqTable::from_mhz(&[400, 800]),
///     FreqTable::from_mhz(&[100, 200]),
///     FreqTable::from_mhz(&[600, 1200]),
/// );
/// let mut act = SimulatedActuator::new(space.clone(), 0.001);
/// let dt = act.apply(space.x_max())?;
/// assert!(dt > 0.0); // switched away from x_min
/// assert_eq!(act.apply(space.x_max())?, 0.0); // no-op switch is free
/// # Ok::<(), bofl_device::ActuatorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SimulatedActuator {
    space: ConfigSpace,
    current: DvfsConfig,
    transition_latency_s: f64,
    transitions: u64,
}

impl SimulatedActuator {
    /// Creates an actuator starting at the space's minimum configuration
    /// (the state a power-conscious device boots into).
    ///
    /// # Panics
    ///
    /// Panics if `transition_latency_s` is negative or non-finite.
    pub fn new(space: ConfigSpace, transition_latency_s: f64) -> Self {
        assert!(
            transition_latency_s.is_finite() && transition_latency_s >= 0.0,
            "transition latency must be a non-negative finite number"
        );
        let current = space.x_min();
        SimulatedActuator {
            space,
            current,
            transition_latency_s,
            transitions: 0,
        }
    }

    /// Number of actual frequency transitions performed so far.
    pub fn transition_count(&self) -> u64 {
        self.transitions
    }

    /// The configuration space this actuator validates against.
    pub fn space(&self) -> &ConfigSpace {
        &self.space
    }
}

impl DvfsActuator for SimulatedActuator {
    fn apply(&mut self, x: DvfsConfig) -> Result<f64, ActuatorError> {
        if !self.space.contains(x) {
            return Err(ActuatorError::OffGrid { requested: x });
        }
        if x == self.current {
            return Ok(0.0);
        }
        self.current = x;
        self.transitions += 1;
        Ok(self.transition_latency_s)
    }

    fn current(&self) -> DvfsConfig {
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FreqMHz, FreqTable};

    fn space() -> ConfigSpace {
        ConfigSpace::new(
            FreqTable::from_mhz(&[400, 800]),
            FreqTable::from_mhz(&[100, 200]),
            FreqTable::from_mhz(&[600, 1200]),
        )
    }

    #[test]
    fn starts_at_min() {
        let act = SimulatedActuator::new(space(), 0.001);
        assert_eq!(act.current(), space().x_min());
        assert_eq!(act.transition_count(), 0);
    }

    #[test]
    fn transitions_cost_time_once() {
        let mut act = SimulatedActuator::new(space(), 0.002);
        let xmax = space().x_max();
        assert_eq!(act.apply(xmax).unwrap(), 0.002);
        assert_eq!(act.apply(xmax).unwrap(), 0.0);
        assert_eq!(act.transition_count(), 1);
        assert_eq!(act.current(), xmax);
    }

    #[test]
    fn rejects_off_grid() {
        let mut act = SimulatedActuator::new(space(), 0.0);
        let bad = DvfsConfig::new(FreqMHz::new(555), FreqMHz::new(100), FreqMHz::new(600));
        let err = act.apply(bad).unwrap_err();
        assert!(matches!(err, ActuatorError::OffGrid { .. }));
        assert!(err.to_string().contains("555"));
    }

    #[test]
    fn sysfs_script_mentions_frequencies() {
        let act = SimulatedActuator::new(space(), 0.0);
        let s = act.sysfs_script(space().x_max());
        assert!(s.contains("800000")); // CPU kHz
        assert!(s.contains("200000000")); // GPU Hz
        assert!(s.contains("1200000000")); // EMC Hz
    }
}
