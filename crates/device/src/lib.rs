//! Simulated DVFS-capable edge devices for the BoFL reproduction.
//!
//! The paper evaluates BoFL on two real boards — Nvidia Jetson AGX Xavier
//! and Jetson TX2 — whose CPU, GPU and memory-controller frequencies can be
//! set independently through sysfs, and whose power draw is read from the
//! onboard INA3221 sensor. This crate replaces that hardware with a
//! calibrated simulator:
//!
//! - [`FreqTable`] / [`ConfigSpace`] reproduce the exact discrete frequency
//!   grids of the paper's Table 1 (AGX: 25×14×6 = 2100 configurations,
//!   TX2: 12×13×6 = 936).
//! - [`LatencyModel`] is a roofline-style pipeline model: per-minibatch
//!   latency is the maximum of the overlappable CPU data pipeline and the
//!   GPU path (compute/memory roofline plus CPU-serialized kernel-launch
//!   time). It reproduces the paper's three measured phenomena (§2.2):
//!   non-linearity, NN-model dependence and hardware dependence.
//! - [`PowerModel`] is a CMOS DVFS model: each unit draws
//!   `c · f · V(f)² · (idle + (1−idle)·utilization)` with a linear
//!   voltage/frequency curve, plus a constant board power.
//! - [`PowerSensor`] emulates the INA3221: sampled, quantized, noisy reads,
//!   which is why BoFL measures each configuration for at least `τ` seconds.
//! - [`DvfsActuator`] / [`SimulatedActuator`] emulate the sysfs knobs with a
//!   frequency-switch latency.
//! - [`Device`] bundles everything, with presets [`Device::jetson_agx`] and
//!   [`Device::jetson_tx2`] calibrated so round latencies match Table 2 of
//!   the paper, and [`Device::profile_all`] producing the ground-truth
//!   profile used by the Oracle baseline.
//!
//! # Examples
//!
//! Evaluating the true latency/energy surface at the maximum configuration:
//!
//! ```
//! use bofl_device::Device;
//! use bofl_workload::{FlTask, TaskKind, Testbed};
//!
//! let device = Device::jetson_agx();
//! let task = FlTask::preset(TaskKind::Cifar10Vit, Testbed::JetsonAgx);
//! let x_max = device.config_space().x_max();
//! let m = device.true_cost(&task, x_max);
//! assert!(m.latency_s > 0.1 && m.latency_s < 0.3);
//! assert!(m.energy_j > 2.0 && m.energy_j < 8.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actuator;
mod clock;
mod config;
mod device;
mod energy;
mod freq;
mod latency;
mod power;
mod sensor;

pub use actuator::{ActuatorError, DvfsActuator, SimulatedActuator};
pub use clock::VirtualClock;
pub use config::{ConfigIndex, ConfigSpace, DvfsConfig};
pub use device::{Device, DeviceBuilder, ProfileEntry};
pub use energy::JobCost;
pub use freq::{FreqMHz, FreqTable};
pub use latency::{CpuModel, GpuModel, LatencyBreakdown, LatencyModel, MemoryModel};
pub use power::{PowerBreakdown, PowerModel, RailModel};
pub use sensor::{PowerSensor, SensorSpec};
