use bofl_linalg::OnlineStats;
use rand::Rng;

/// Static characteristics of the simulated INA3221 power monitor.
///
/// The real sensor reports bus voltage × shunt current at a bounded sample
/// rate, with quantization from its ADC and electrical noise. BoFL's
/// "reference measurement duration" τ (paper §4.2) exists precisely because
/// a single short job gives noisy energy readings — this simulated sensor
/// reproduces that effect so the τ-averaging code path is genuinely
/// exercised.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SensorSpec {
    /// Sampling period in seconds (INA3221 continuous mode ≈ 1–2 ms
    /// per channel pair; we use the effective sysfs polling period).
    pub sample_period_s: f64,
    /// Relative standard deviation of multiplicative Gaussian read noise.
    pub relative_noise: f64,
    /// Power quantization step in watts (ADC LSB after conversion).
    pub quantum_w: f64,
}

impl Default for SensorSpec {
    fn default() -> Self {
        SensorSpec {
            sample_period_s: 0.005,
            relative_noise: 0.02,
            quantum_w: 0.025,
        }
    }
}

/// A simulated power sensor: integrates true power into measured energy
/// with sampling, quantization and noise.
///
/// # Examples
///
/// ```
/// use bofl_device::{PowerSensor, SensorSpec};
/// use rand::SeedableRng;
///
/// let sensor = PowerSensor::new(SensorSpec::default());
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// // Measure a 0.5 s interval at a constant 20 W: expect ≈ 10 J.
/// let e = sensor.measure_energy(20.0, 0.5, &mut rng);
/// assert!((e - 10.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSensor {
    spec: SensorSpec,
}

impl PowerSensor {
    /// Creates a sensor with the given characteristics.
    ///
    /// # Panics
    ///
    /// Panics if the sample period or quantum is non-positive, or the
    /// noise level is negative.
    pub fn new(spec: SensorSpec) -> Self {
        assert!(spec.sample_period_s > 0.0, "sample period must be > 0");
        assert!(spec.quantum_w > 0.0, "quantum must be > 0");
        assert!(spec.relative_noise >= 0.0, "noise must be >= 0");
        PowerSensor { spec }
    }

    /// The sensor characteristics.
    pub fn spec(&self) -> SensorSpec {
        self.spec
    }

    /// Takes one instantaneous power reading of a true power `true_w`.
    pub fn read_power(&self, true_w: f64, rng: &mut impl Rng) -> f64 {
        let noisy = true_w * (1.0 + self.spec.relative_noise * standard_normal(rng));
        // ADC quantization.
        (noisy / self.spec.quantum_w).round() * self.spec.quantum_w
    }

    /// Measures the energy of an interval of `duration_s` seconds during
    /// which the true average power is `true_w`, by integrating sampled
    /// readings. Short intervals see relatively larger error because fewer
    /// samples average the noise — the effect BoFL's τ guards against.
    pub fn measure_energy(&self, true_w: f64, duration_s: f64, rng: &mut impl Rng) -> f64 {
        assert!(duration_s >= 0.0, "duration must be non-negative");
        if duration_s == 0.0 {
            return 0.0;
        }
        let n_samples = (duration_s / self.spec.sample_period_s).floor().max(1.0) as u64;
        let mut stats = OnlineStats::new();
        for _ in 0..n_samples {
            stats.push(self.read_power(true_w, rng));
        }
        debug_assert!(stats.count() == n_samples);
        stats.mean() * duration_s
    }

    /// Relative 1-σ error expected for an energy measurement over
    /// `duration_s` (noise shrinks with √samples; quantization adds a
    /// floor). Useful for clients that want to pick τ analytically.
    pub fn expected_relative_error(&self, true_w: f64, duration_s: f64) -> f64 {
        if duration_s <= 0.0 || true_w <= 0.0 {
            return f64::INFINITY;
        }
        let n = (duration_s / self.spec.sample_period_s).floor().max(1.0);
        let noise_term = self.spec.relative_noise / n.sqrt();
        let quant_term = self.spec.quantum_w / (2.0 * true_w * n.sqrt());
        noise_term + quant_term
    }
}

impl Default for PowerSensor {
    fn default() -> Self {
        PowerSensor::new(SensorSpec::default())
    }
}

/// Standard normal sample via Box–Muller (keeps `rand_distr` out of the
/// dependency tree).
fn standard_normal(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn energy_unbiased_over_long_interval() {
        let sensor = PowerSensor::default();
        let mut rng = StdRng::seed_from_u64(42);
        let mut total = 0.0;
        let trials = 50;
        for _ in 0..trials {
            total += sensor.measure_energy(20.0, 5.0, &mut rng);
        }
        let mean = total / trials as f64;
        assert!(
            (mean - 100.0).abs() < 0.5,
            "mean energy {mean} should be ≈ 100 J"
        );
    }

    #[test]
    fn short_measurements_are_noisier() {
        let sensor = PowerSensor::default();
        let mut rng = StdRng::seed_from_u64(1);
        let rel_err = |dur: f64, rng: &mut StdRng| {
            let mut sq = 0.0;
            let trials = 200;
            for _ in 0..trials {
                let e = sensor.measure_energy(10.0, dur, rng);
                let rel = (e - 10.0 * dur) / (10.0 * dur);
                sq += rel * rel;
            }
            (sq / trials as f64).sqrt()
        };
        let short = rel_err(0.01, &mut rng); // 2 samples
        let long = rel_err(2.0, &mut rng); // 400 samples
        assert!(
            short > 3.0 * long,
            "short-interval error {short} should exceed long-interval error {long}"
        );
    }

    #[test]
    fn expected_error_decreases_with_duration() {
        let sensor = PowerSensor::default();
        let e1 = sensor.expected_relative_error(15.0, 0.1);
        let e2 = sensor.expected_relative_error(15.0, 5.0);
        assert!(e1 > e2);
        assert_eq!(sensor.expected_relative_error(15.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn zero_duration_measures_zero() {
        let sensor = PowerSensor::default();
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(sensor.measure_energy(10.0, 0.0, &mut rng), 0.0);
    }

    #[test]
    fn quantization_applies() {
        let spec = SensorSpec {
            sample_period_s: 0.001,
            relative_noise: 0.0,
            quantum_w: 0.5,
        };
        let sensor = PowerSensor::new(spec);
        let mut rng = StdRng::seed_from_u64(9);
        // 10.2 W quantizes to 10.0 W exactly with no noise.
        let p = sensor.read_power(10.2, &mut rng);
        assert_eq!(p, 10.0);
    }

    #[test]
    #[should_panic(expected = "sample period must be > 0")]
    fn rejects_bad_spec() {
        let _ = PowerSensor::new(SensorSpec {
            sample_period_s: 0.0,
            ..SensorSpec::default()
        });
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(1234);
        let n = 20_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let z = standard_normal(&mut rng);
            sum += z;
            sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
