use crate::{FreqMHz, FreqTable};

/// One DVFS configuration: the operational frequencies of CPU, GPU and
/// memory controller (the paper's `x ∈ X = F_CPU × F_GPU × F_MC`).
///
/// # Examples
///
/// ```
/// use bofl_device::{DvfsConfig, FreqMHz};
///
/// let x = DvfsConfig::new(
///     FreqMHz::new(2265),
///     FreqMHz::new(1377),
///     FreqMHz::new(2133),
/// );
/// assert_eq!(x.cpu.as_mhz(), 2265);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DvfsConfig {
    /// CPU cluster frequency.
    pub cpu: FreqMHz,
    /// GPU core frequency.
    pub gpu: FreqMHz,
    /// Memory-controller (EMC) frequency.
    pub mem: FreqMHz,
}

impl DvfsConfig {
    /// Creates a configuration from the three unit frequencies.
    pub fn new(cpu: FreqMHz, gpu: FreqMHz, mem: FreqMHz) -> Self {
        DvfsConfig { cpu, gpu, mem }
    }

    /// The configuration as normalized coordinates in `[0, 1]³` relative to
    /// a [`ConfigSpace`] — the input representation used by the GP
    /// surrogate.
    pub fn to_unit_cube(self, space: &ConfigSpace) -> [f64; 3] {
        let norm = |f: FreqMHz, t: &FreqTable| {
            let lo = t.min().as_mhz() as f64;
            let hi = t.max().as_mhz() as f64;
            (f.as_mhz() as f64 - lo) / (hi - lo)
        };
        [
            norm(self.cpu, space.cpu_table()),
            norm(self.gpu, space.gpu_table()),
            norm(self.mem, space.mem_table()),
        ]
    }
}

impl std::fmt::Display for DvfsConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "(cpu {}, gpu {}, mem {})",
            self.cpu.as_mhz(),
            self.gpu.as_mhz(),
            self.mem.as_mhz()
        )
    }
}

/// Index of a configuration within a [`ConfigSpace`] grid (row-major over
/// CPU, GPU, MEM axes).
///
/// A newtype so grid indices cannot be mixed up with job counts or round
/// numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConfigIndex(pub usize);

impl std::fmt::Display for ConfigIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The full discrete DVFS configuration space of a device: the cartesian
/// product of the three per-unit frequency tables.
///
/// # Examples
///
/// ```
/// use bofl_device::{ConfigSpace, FreqTable};
///
/// let space = ConfigSpace::new(
///     FreqTable::linspace_mhz(420, 2265, 25),
///     FreqTable::linspace_mhz(114, 1377, 14),
///     FreqTable::linspace_mhz(204, 2133, 6),
/// );
/// assert_eq!(space.len(), 2100); // the AGX grid of the paper's Table 1
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConfigSpace {
    cpu: FreqTable,
    gpu: FreqTable,
    mem: FreqTable,
}

impl ConfigSpace {
    /// Creates a configuration space from the three unit tables.
    pub fn new(cpu: FreqTable, gpu: FreqTable, mem: FreqTable) -> Self {
        ConfigSpace { cpu, gpu, mem }
    }

    /// Total number of unique configurations `|F_CPU|·|F_GPU|·|F_MC|`.
    pub fn len(&self) -> usize {
        self.cpu.len() * self.gpu.len() * self.mem.len()
    }

    /// `false` always (tables are non-empty); for API completeness.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The CPU frequency table.
    pub fn cpu_table(&self) -> &FreqTable {
        &self.cpu
    }

    /// The GPU frequency table.
    pub fn gpu_table(&self) -> &FreqTable {
        &self.gpu
    }

    /// The memory-controller frequency table.
    pub fn mem_table(&self) -> &FreqTable {
        &self.mem
    }

    /// The guardian configuration `x_max` with every unit at its highest
    /// frequency (paper §4.2).
    pub fn x_max(&self) -> DvfsConfig {
        DvfsConfig::new(self.cpu.max(), self.gpu.max(), self.mem.max())
    }

    /// The configuration with every unit at its lowest frequency.
    pub fn x_min(&self) -> DvfsConfig {
        DvfsConfig::new(self.cpu.min(), self.gpu.min(), self.mem.min())
    }

    /// The configuration at a grid index, or `None` if out of range.
    pub fn get(&self, index: ConfigIndex) -> Option<DvfsConfig> {
        let i = index.0;
        if i >= self.len() {
            return None;
        }
        let (ng, nm) = (self.gpu.len(), self.mem.len());
        let ci = i / (ng * nm);
        let gi = (i / nm) % ng;
        let mi = i % nm;
        Some(DvfsConfig::new(
            self.cpu.get(ci)?,
            self.gpu.get(gi)?,
            self.mem.get(mi)?,
        ))
    }

    /// The grid index of a configuration, or `None` if any axis value is
    /// not in its table.
    pub fn index_of(&self, x: DvfsConfig) -> Option<ConfigIndex> {
        let ci = self.cpu.position(x.cpu)?;
        let gi = self.gpu.position(x.gpu)?;
        let mi = self.mem.position(x.mem)?;
        Some(ConfigIndex(
            ci * self.gpu.len() * self.mem.len() + gi * self.mem.len() + mi,
        ))
    }

    /// `true` iff `x` lies exactly on the grid.
    pub fn contains(&self, x: DvfsConfig) -> bool {
        self.index_of(x).is_some()
    }

    /// Snaps an arbitrary configuration to the nearest grid point per axis.
    pub fn snap(&self, x: DvfsConfig) -> DvfsConfig {
        DvfsConfig::new(
            self.cpu.nearest(x.cpu),
            self.gpu.nearest(x.gpu),
            self.mem.nearest(x.mem),
        )
    }

    /// Maps unit-cube coordinates `[0,1]³` to the nearest grid
    /// configuration (inverse of [`DvfsConfig::to_unit_cube`], up to
    /// snapping).
    pub fn from_unit_cube(&self, u: [f64; 3]) -> DvfsConfig {
        let pick = |t: &FreqTable, v: f64| {
            let v = v.clamp(0.0, 1.0);
            let lo = t.min().as_mhz() as f64;
            let hi = t.max().as_mhz() as f64;
            t.nearest(FreqMHz::new((lo + v * (hi - lo)).round().max(1.0) as u32))
        };
        DvfsConfig::new(
            pick(&self.cpu, u[0]),
            pick(&self.gpu, u[1]),
            pick(&self.mem, u[2]),
        )
    }

    /// Iterates over every configuration in grid order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            space: self,
            next: 0,
        }
    }
}

/// Iterator over all configurations of a [`ConfigSpace`] (see
/// [`ConfigSpace::iter`]).
#[derive(Debug)]
pub struct Iter<'a> {
    space: &'a ConfigSpace,
    next: usize,
}

impl Iterator for Iter<'_> {
    type Item = DvfsConfig;

    fn next(&mut self) -> Option<DvfsConfig> {
        let x = self.space.get(ConfigIndex(self.next))?;
        self.next += 1;
        Some(x)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.space.len().saturating_sub(self.next);
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_space() -> ConfigSpace {
        ConfigSpace::new(
            FreqTable::from_mhz(&[100, 200]),
            FreqTable::from_mhz(&[300, 400, 500]),
            FreqTable::from_mhz(&[600, 700]),
        )
    }

    #[test]
    fn len_is_product() {
        assert_eq!(small_space().len(), 12);
        assert!(!small_space().is_empty());
    }

    #[test]
    fn index_roundtrip_all() {
        let s = small_space();
        for i in 0..s.len() {
            let x = s.get(ConfigIndex(i)).unwrap();
            assert_eq!(s.index_of(x), Some(ConfigIndex(i)));
        }
        assert_eq!(s.get(ConfigIndex(12)), None);
    }

    #[test]
    fn iter_covers_space_uniquely() {
        let s = small_space();
        let all: Vec<DvfsConfig> = s.iter().collect();
        assert_eq!(all.len(), 12);
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 12);
        assert_eq!(s.iter().len(), 12);
    }

    #[test]
    fn x_max_and_min() {
        let s = small_space();
        let xmax = s.x_max();
        assert_eq!(
            (xmax.cpu.as_mhz(), xmax.gpu.as_mhz(), xmax.mem.as_mhz()),
            (200, 500, 700)
        );
        let xmin = s.x_min();
        assert_eq!(
            (xmin.cpu.as_mhz(), xmin.gpu.as_mhz(), xmin.mem.as_mhz()),
            (100, 300, 600)
        );
        assert!(s.contains(xmax));
    }

    #[test]
    fn snap_off_grid() {
        let s = small_space();
        let x = DvfsConfig::new(FreqMHz::new(140), FreqMHz::new(444), FreqMHz::new(900));
        let snapped = s.snap(x);
        assert_eq!(snapped.cpu.as_mhz(), 100);
        assert_eq!(snapped.gpu.as_mhz(), 400);
        assert_eq!(snapped.mem.as_mhz(), 700);
        assert!(s.contains(snapped));
        assert!(!s.contains(x));
    }

    #[test]
    fn unit_cube_roundtrip() {
        let s = small_space();
        for x in s.iter() {
            let u = x.to_unit_cube(&s);
            assert!(u.iter().all(|&v| (0.0..=1.0).contains(&v)));
            assert_eq!(s.from_unit_cube(u), x);
        }
    }

    #[test]
    fn paper_grid_sizes() {
        // Table 1: AGX 25×14×6 = 2100, TX2 12×13×6 = 936.
        let agx = ConfigSpace::new(
            FreqTable::linspace_mhz(420, 2265, 25),
            FreqTable::linspace_mhz(114, 1377, 14),
            FreqTable::linspace_mhz(204, 2133, 6),
        );
        assert_eq!(agx.len(), 2100);
        let tx2 = ConfigSpace::new(
            FreqTable::linspace_mhz(345, 2035, 12),
            FreqTable::linspace_mhz(114, 1300, 13),
            FreqTable::linspace_mhz(408, 1866, 6),
        );
        assert_eq!(tx2.len(), 936);
    }

    #[test]
    fn display_formats() {
        let x = small_space().x_max();
        let s = x.to_string();
        assert!(s.contains("cpu 200"));
        assert_eq!(ConfigIndex(7).to_string(), "#7");
    }
}
