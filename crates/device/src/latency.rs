use crate::DvfsConfig;
use bofl_workload::{FlTask, GpuArch};

/// CPU-side performance parameters of a simulated device.
///
/// Both the overlappable data pipeline and the serialized launch/sync path
/// run on the CPU cluster; their throughput scales linearly with the CPU
/// clock, modulated by a per-device IPC factor (`ipc_factor`, which is how
/// the TX2's weaker Denver2/A57 complex is modeled relative to the AGX's
/// Carmel cores).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CpuModel {
    /// Relative instructions-per-cycle factor (AGX Carmel = 1.0).
    pub ipc_factor: f64,
    /// Number of cores usable by the overlapped data pipeline.
    pub pipeline_cores: f64,
}

/// GPU performance parameters of a simulated device.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GpuModel {
    /// Micro-architecture family, used to look up the workload's sustained
    /// kernel efficiency.
    pub arch: GpuArch,
    /// Peak FLOPs per GPU cycle (CUDA cores × 2 for FMA).
    pub peak_flops_per_cycle: f64,
}

/// Memory-controller performance parameters of a simulated device.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemoryModel {
    /// Effective (sustained) bytes transferred per EMC cycle.
    pub bytes_per_cycle: f64,
}

/// Per-minibatch latency decomposition produced by [`LatencyModel::evaluate`].
///
/// All times are in seconds. The total is
/// `fixed + max(gpu_path, cpu_pipeline)` where
/// `gpu_path = roofline(compute, memory) + serial`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LatencyBreakdown {
    /// GPU compute time at the configured GPU clock.
    pub gpu_compute_s: f64,
    /// DRAM transfer time at the configured EMC clock.
    pub memory_s: f64,
    /// CPU-serialized launch/sync time at the configured CPU clock.
    pub serial_s: f64,
    /// Overlappable CPU data-pipeline time at the configured CPU clock.
    pub pipeline_s: f64,
    /// Configuration-independent fixed overhead.
    pub fixed_s: f64,
    /// Total per-minibatch latency.
    pub total_s: f64,
}

impl LatencyBreakdown {
    /// Busy fraction of the GPU during the minibatch (for the power model).
    pub fn gpu_utilization(&self) -> f64 {
        if self.total_s <= 0.0 {
            return 0.0;
        }
        (self.gpu_compute_s.max(self.memory_s) / self.total_s).min(1.0)
    }

    /// Busy fraction of the CPU during the minibatch.
    pub fn cpu_utilization(&self) -> f64 {
        if self.total_s <= 0.0 {
            return 0.0;
        }
        ((self.serial_s + self.pipeline_s) / self.total_s).min(1.0)
    }

    /// Busy fraction of the memory controller during the minibatch.
    pub fn mem_utilization(&self) -> f64 {
        if self.total_s <= 0.0 {
            return 0.0;
        }
        (self.memory_s / self.total_s).min(1.0)
    }
}

/// The roofline-style pipeline latency model `T(x)` of the simulated
/// device.
///
/// Model (per minibatch of `B` samples):
///
/// ```text
/// t_compute  = B · flops/sample ÷ (peak_flops_per_cycle · eff(arch) · f_gpu)
/// t_memory   = B · bytes/sample ÷ (bytes_per_cycle · f_mem)
/// t_gpu      = max(t_compute, t_memory) + γ · min(t_compute, t_memory)
/// t_serial   = serial_cycles/batch ÷ (ipc_factor · f_cpu)
/// t_pipeline = B · host_cycles/sample ÷ (ipc_factor · pipeline_cores · f_cpu)
/// T(x)       = t_fixed + max(t_gpu + t_serial, t_pipeline)
/// ```
///
/// `γ` (`roofline_overlap`) captures the imperfect overlap of compute and
/// memory phases; `t_serial` is what makes slow CPUs bottleneck GPU-bound
/// workloads (the paper's Fig. 3a saturation) and launch-heavy RNNs scale
/// with CPU frequency (Fig. 4a).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LatencyModel {
    /// CPU parameters.
    pub cpu: CpuModel,
    /// GPU parameters.
    pub gpu: GpuModel,
    /// Memory parameters.
    pub mem: MemoryModel,
    /// Fraction of the shorter roofline phase that fails to overlap with
    /// the longer one (0 = perfect overlap, 1 = fully serial).
    pub roofline_overlap: f64,
    /// Fixed per-minibatch overhead in seconds.
    pub fixed_overhead_s: f64,
}

impl LatencyModel {
    /// Evaluates the noise-free latency of one minibatch of `task` under
    /// configuration `x`.
    pub fn evaluate(&self, task: &FlTask, x: DvfsConfig) -> LatencyBreakdown {
        let b = task.minibatch_size();
        let model = task.model();
        let eff = model.efficiency().for_arch(self.gpu.arch);

        let gpu_rate = self.gpu.peak_flops_per_cycle * eff * x.gpu.as_hz();
        let gpu_compute_s = model.flops_per_batch(b) / gpu_rate;

        let mem_rate = self.mem.bytes_per_cycle * x.mem.as_hz();
        let memory_s = model.bytes_per_batch(b) / mem_rate;

        let cpu_rate = self.cpu.ipc_factor * x.cpu.as_hz();
        let serial_s = model.serial_cycles_per_batch() / cpu_rate;
        let pipeline_s = model.host_cycles_per_batch(b) / (cpu_rate * self.cpu.pipeline_cores);

        let long = gpu_compute_s.max(memory_s);
        let short = gpu_compute_s.min(memory_s);
        let gpu_path = long + self.roofline_overlap * short + serial_s;

        let total_s = self.fixed_overhead_s + gpu_path.max(pipeline_s);

        LatencyBreakdown {
            gpu_compute_s,
            memory_s,
            serial_s,
            pipeline_s,
            fixed_s: self.fixed_overhead_s,
            total_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FreqMHz;
    use bofl_workload::{TaskKind, Testbed};

    fn agx_like() -> LatencyModel {
        LatencyModel {
            cpu: CpuModel {
                ipc_factor: 1.0,
                pipeline_cores: 4.0,
            },
            gpu: GpuModel {
                arch: GpuArch::Volta,
                peak_flops_per_cycle: 1024.0,
            },
            mem: MemoryModel {
                bytes_per_cycle: 40.0,
            },
            roofline_overlap: 0.15,
            fixed_overhead_s: 0.018,
        }
    }

    fn cfg(c: u32, g: u32, m: u32) -> DvfsConfig {
        DvfsConfig::new(FreqMHz::new(c), FreqMHz::new(g), FreqMHz::new(m))
    }

    #[test]
    fn latency_decreases_with_gpu_freq_when_gpu_bound() {
        let lm = agx_like();
        let task = FlTask::preset(TaskKind::Cifar10Vit, Testbed::JetsonAgx);
        let slow = lm.evaluate(&task, cfg(2265, 700, 2133));
        let fast = lm.evaluate(&task, cfg(2265, 1377, 2133));
        assert!(fast.total_s < slow.total_s);
    }

    #[test]
    fn slow_cpu_saturates_gpu_scaling() {
        // Paper Fig. 3a: with CPU at 0.42 GHz, raising GPU clock past some
        // point stops helping because the CPU pipeline/serial path is the
        // bottleneck.
        let lm = agx_like();
        let task = FlTask::preset(TaskKind::Cifar10Vit, Testbed::JetsonAgx);
        let mid = lm.evaluate(&task, cfg(420, 1100, 2133));
        let max = lm.evaluate(&task, cfg(420, 1377, 2133));
        let rel_gain = (mid.total_s - max.total_s) / mid.total_s;
        assert!(
            rel_gain < 0.05,
            "gain {rel_gain} should be small when CPU-bound"
        );
        // ... but with a fast CPU the same GPU step helps substantially.
        let mid_f = lm.evaluate(&task, cfg(2265, 1100, 2133));
        let max_f = lm.evaluate(&task, cfg(2265, 1377, 2133));
        let rel_gain_f = (mid_f.total_s - max_f.total_s) / mid_f.total_s;
        assert!(rel_gain_f > rel_gain);
    }

    #[test]
    fn lstm_scales_with_cpu_clock() {
        // Paper Fig. 4a: LSTM latency roughly halves from 0.6 → 1.7 GHz.
        let lm = agx_like();
        let task = FlTask::preset(TaskKind::ImdbLstm, Testbed::JetsonAgx);
        let slow = lm.evaluate(&task, cfg(650, 1377, 2133));
        let fast = lm.evaluate(&task, cfg(1700, 1377, 2133));
        let ratio = slow.total_s / fast.total_s;
        assert!(
            (1.6..=2.8).contains(&ratio),
            "LSTM CPU-scaling ratio {ratio}"
        );
    }

    #[test]
    fn resnet_is_flat_in_cpu_clock() {
        // Paper Fig. 4a: ResNet50 latency barely moves across the CPU sweep.
        let lm = agx_like();
        let task = FlTask::preset(TaskKind::ImagenetResnet50, Testbed::JetsonAgx);
        let slow = lm.evaluate(&task, cfg(700, 1377, 2133));
        let fast = lm.evaluate(&task, cfg(1700, 1377, 2133));
        let ratio = slow.total_s / fast.total_s;
        assert!(ratio < 1.25, "ResNet CPU-scaling ratio {ratio}");
    }

    #[test]
    fn utilizations_are_fractions() {
        let lm = agx_like();
        for kind in TaskKind::all() {
            let task = FlTask::preset(kind, Testbed::JetsonAgx);
            for x in [
                cfg(420, 114, 204),
                cfg(2265, 1377, 2133),
                cfg(1100, 700, 800),
            ] {
                let b = lm.evaluate(&task, x);
                for u in [
                    b.gpu_utilization(),
                    b.cpu_utilization(),
                    b.mem_utilization(),
                ] {
                    assert!((0.0..=1.0).contains(&u), "utilization {u} out of range");
                }
                assert!(b.total_s > 0.0);
                assert!(b.total_s >= b.fixed_s);
            }
        }
    }

    #[test]
    fn breakdown_total_is_consistent() {
        let lm = agx_like();
        let task = FlTask::preset(TaskKind::Cifar10Vit, Testbed::JetsonAgx);
        let b = lm.evaluate(&task, cfg(2265, 1377, 2133));
        let long = b.gpu_compute_s.max(b.memory_s);
        let short = b.gpu_compute_s.min(b.memory_s);
        let gpu_path = long + 0.15 * short + b.serial_s;
        let expect = b.fixed_s + gpu_path.max(b.pipeline_s);
        assert!((b.total_s - expect).abs() < 1e-12);
    }
}
