//! Property-based tests for the device simulator.

use bofl_device::{ConfigIndex, ConfigSpace, Device, DvfsConfig, FreqMHz, FreqTable};
use bofl_workload::{FlTask, TaskKind, Testbed};
use proptest::prelude::*;

fn any_task() -> impl Strategy<Value = (FlTask, Testbed)> {
    (0usize..3, prop::bool::ANY).prop_map(|(k, agx)| {
        let kind = TaskKind::all()[k];
        let bed = if agx {
            Testbed::JetsonAgx
        } else {
            Testbed::JetsonTx2
        };
        (FlTask::preset(kind, bed), bed)
    })
}

fn device_for(bed: Testbed) -> Device {
    match bed {
        Testbed::JetsonAgx => Device::jetson_agx(),
        Testbed::JetsonTx2 => Device::jetson_tx2(),
        _ => unreachable!("only two testbeds exist"),
    }
}

proptest! {
    /// Latency is monotone non-increasing along every single frequency
    /// axis: raising one clock while holding the others fixed never slows
    /// the job down (it may not speed it up — that is the non-linearity).
    #[test]
    fn latency_monotone_per_axis((task, bed) in any_task(), seed in 0usize..500) {
        let dev = device_for(bed);
        let space = dev.config_space();
        let idx = seed % space.len();
        let x = space.get(ConfigIndex(idx)).unwrap();

        let lat = |x: DvfsConfig| dev.true_cost(&task, x).latency_s;
        let base = lat(x);

        let up = |t: &FreqTable, f: FreqMHz| {
            t.position(f).and_then(|i| t.get(i + 1))
        };
        if let Some(c) = up(space.cpu_table(), x.cpu) {
            prop_assert!(lat(DvfsConfig::new(c, x.gpu, x.mem)) <= base + 1e-12);
        }
        if let Some(g) = up(space.gpu_table(), x.gpu) {
            prop_assert!(lat(DvfsConfig::new(x.cpu, g, x.mem)) <= base + 1e-12);
        }
        if let Some(m) = up(space.mem_table(), x.mem) {
            prop_assert!(lat(DvfsConfig::new(x.cpu, x.gpu, m)) <= base + 1e-12);
        }
    }

    /// Energy and latency are strictly positive and finite everywhere.
    #[test]
    fn costs_positive_finite((task, bed) in any_task(), seed in 0usize..997) {
        let dev = device_for(bed);
        let space = dev.config_space();
        let x = space.get(ConfigIndex(seed % space.len())).unwrap();
        let c = dev.true_cost(&task, x);
        prop_assert!(c.latency_s.is_finite() && c.latency_s > 0.0);
        prop_assert!(c.energy_j.is_finite() && c.energy_j > 0.0);
        // Power must stay within a physically plausible envelope (< 60 W).
        prop_assert!(c.average_power_w() > 1.0 && c.average_power_w() < 60.0);
    }

    /// Measured jobs agree with the truth up to bounded noise.
    #[test]
    fn measurement_noise_is_bounded((task, bed) in any_task(), seed in 0u64..100) {
        use rand::{rngs::StdRng, SeedableRng};
        let dev = device_for(bed);
        let x = dev.config_space().x_max();
        let truth = dev.true_cost(&task, x);
        let mut rng = StdRng::seed_from_u64(seed);
        let m = dev.run_job(&task, x, &mut rng);
        prop_assert!((m.latency_s / truth.latency_s - 1.0).abs() < 0.2);
        prop_assert!((m.energy_j / truth.energy_j - 1.0).abs() < 0.3);
    }

    /// Unit-cube mapping is a bijection onto the grid.
    #[test]
    fn unit_cube_bijection(seed in 0usize..2100) {
        let space = Device::jetson_agx().config_space().clone();
        let x = space.get(ConfigIndex(seed % space.len())).unwrap();
        prop_assert_eq!(space.from_unit_cube(x.to_unit_cube(&space)), x);
    }
}

#[test]
fn config_space_snap_is_idempotent() {
    let space = ConfigSpace::new(
        FreqTable::from_mhz(&[100, 350, 900]),
        FreqTable::from_mhz(&[200, 500]),
        FreqTable::from_mhz(&[400, 1600]),
    );
    let off = DvfsConfig::new(FreqMHz::new(777), FreqMHz::new(333), FreqMHz::new(401));
    let s1 = space.snap(off);
    assert_eq!(space.snap(s1), s1);
}
