//! Calibration checks: the simulated devices must reproduce the paper's
//! Table 2 round latencies (T_min) and plausible energy envelopes.

use bofl_device::Device;
use bofl_workload::{FlTask, TaskKind, Testbed};

fn check(device: &Device, testbed: Testbed, kind: TaskKind, tmin_paper: f64, tol: f64) {
    let task = FlTask::preset(kind, testbed);
    let tmin = device.round_latency_at_max(&task);
    let rel = (tmin - tmin_paper) / tmin_paper;
    assert!(
        rel.abs() <= tol,
        "{kind} on {testbed}: simulated T_min {tmin:.1} s vs paper {tmin_paper:.1} s ({:+.1}%)",
        rel * 100.0
    );
}

#[test]
fn agx_tmin_matches_table2() {
    let agx = Device::jetson_agx();
    check(&agx, Testbed::JetsonAgx, TaskKind::Cifar10Vit, 37.2, 0.10);
    check(
        &agx,
        Testbed::JetsonAgx,
        TaskKind::ImagenetResnet50,
        46.9,
        0.10,
    );
    check(&agx, Testbed::JetsonAgx, TaskKind::ImdbLstm, 46.1, 0.10);
}

#[test]
fn tx2_tmin_matches_table2() {
    let tx2 = Device::jetson_tx2();
    check(&tx2, Testbed::JetsonTx2, TaskKind::Cifar10Vit, 36.0, 0.10);
    check(
        &tx2,
        Testbed::JetsonTx2,
        TaskKind::ImagenetResnet50,
        49.2,
        0.10,
    );
    check(&tx2, Testbed::JetsonTx2, TaskKind::ImdbLstm, 55.6, 0.10);
}

#[test]
fn energy_per_minibatch_envelopes() {
    // Fig. 11 energy ranges on AGX: ViT 3.5–5.0 J, ResNet 4.8–7.2 J,
    // LSTM 4.8–7.2 J at/near x_max. Allow generous envelopes.
    let agx = Device::jetson_agx();
    let cases = [
        (TaskKind::Cifar10Vit, 3.2, 5.5),
        (TaskKind::ImagenetResnet50, 4.3, 8.0),
        (TaskKind::ImdbLstm, 4.3, 8.0),
    ];
    for (kind, lo, hi) in cases {
        let task = FlTask::preset(kind, Testbed::JetsonAgx);
        let e = agx.true_cost(&task, agx.config_space().x_max()).energy_j;
        assert!(
            (lo..=hi).contains(&e),
            "{kind} AGX energy/minibatch {e:.2} J outside [{lo}, {hi}]"
        );
    }
}

#[test]
fn cross_device_speedups_match_fig5_shape() {
    // Fig. 5a: AGX latency normalized to TX2 at x_max. Paper reports
    // ViT 0.39, ResNet50 0.32; for LSTM the paper's Fig. 5 (0.80) is
    // inconsistent with its own Table 2 (which implies ≈ 0.41) — we
    // follow Table 2 (see EXPERIMENTS.md).
    let agx = Device::jetson_agx();
    let tx2 = Device::jetson_tx2();
    let ratio = |kind: TaskKind| {
        let ta = FlTask::preset(kind, Testbed::JetsonAgx);
        let tt = FlTask::preset(kind, Testbed::JetsonTx2);
        agx.true_cost(&ta, agx.config_space().x_max()).latency_s
            / tx2.true_cost(&tt, tx2.config_space().x_max()).latency_s
    };
    let vit = ratio(TaskKind::Cifar10Vit);
    let resnet = ratio(TaskKind::ImagenetResnet50);
    let lstm = ratio(TaskKind::ImdbLstm);
    assert!((0.30..=0.50).contains(&vit), "ViT ratio {vit:.2}");
    assert!((0.25..=0.42).contains(&resnet), "ResNet ratio {resnet:.2}");
    assert!(lstm > resnet, "LSTM should benefit least from AGX");
    assert!((0.33..=0.90).contains(&lstm), "LSTM ratio {lstm:.2}");
}
