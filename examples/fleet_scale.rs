//! Fleet-scale simulation: 200 heterogeneous clients over 20 federated
//! rounds, executed twice from the same fleet seed — once on the
//! sequential fleet engine and once on a multi-threaded worker pool — to
//! demonstrate the engine's headline property: the aggregate trace (and
//! the exported metrics CSV) is byte-identical at any worker count, while
//! wall-clock time drops with available cores.
//!
//! ```sh
//! cargo run --release --example fleet_scale
//! ```

use bofl_fl::FederationConfig;
use bofl_fleet::prelude::*;
use std::time::Instant;

const CLIENTS: usize = 200;
const ROUNDS: usize = 20;
const PER_ROUND: usize = 40;
const FLEET_SEED: u64 = 2022;

fn simulation(workers: usize) -> FleetSimulation {
    let spec = FleetSpec::mixed(CLIENTS, FLEET_SEED);
    FleetSimulation::builder(spec)
        .federation(FederationConfig {
            clients_per_round: PER_ROUND,
            rounds: ROUNDS,
            deadline_ratio: 2.5,
            dirichlet_alpha: 0.5,
            feature_dims: 10,
            classes: 5,
            learning_rate: 0.25,
            seed: FLEET_SEED,
            ..FederationConfig::default()
        })
        .workers(workers)
        .faults(
            FaultPlan::new(FLEET_SEED ^ 0xFA17)
                .with_dropout(0.05)
                .with_stragglers(0.10, (1.5, 3.0))
                .with_upload_failures(0.03),
        )
        .build()
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = cores.max(4);
    println!(
        "fleet: {CLIENTS} mixed AGX/TX2 clients, {ROUNDS} rounds × {PER_ROUND} clients, \
         fault injection on ({cores} cores available)"
    );

    let started = Instant::now();
    let sequential = simulation(1).run();
    let seq_s = started.elapsed().as_secs_f64();
    println!("sequential engine: {seq_s:.2}s");

    let started = Instant::now();
    let parallel = simulation(workers).run();
    let par_s = started.elapsed().as_secs_f64();
    println!(
        "parallel engine ({workers} workers): {par_s:.2}s  ({:.2}x)",
        seq_s / par_s
    );

    // The determinism contract, checked at the artifact level: both runs
    // must export byte-identical fleet metrics.
    let seq_csv = sequential.metrics.to_csv();
    let par_csv = parallel.metrics.to_csv();
    assert_eq!(
        sequential.history, parallel.history,
        "trace must not depend on workers"
    );
    assert_eq!(seq_csv, par_csv, "metrics CSV must not depend on workers");
    println!("determinism: sequential and parallel CSVs are byte-identical ✓");

    if cores >= 4 {
        assert!(
            par_s * 2.0 <= seq_s,
            "with {cores} cores, {workers} workers should be ≥2x faster \
             (sequential {seq_s:.2}s vs parallel {par_s:.2}s)"
        );
        println!("speedup: ≥2x over sequential ✓");
    } else {
        println!("speedup check skipped: needs ≥4 cores, found {cores}");
    }

    println!("\nper-round fleet metrics (first 5 rounds):");
    for line in seq_csv.lines().take(6) {
        println!("  {line}");
    }
    let last = sequential.metrics.rounds().last().expect("rounds ran");
    println!(
        "\nfinal round: {}/{} aggregated, miss rate {:.2}, accuracy {:.1}%",
        last.aggregated,
        last.selected,
        last.deadline_miss_rate,
        last.test_accuracy * 100.0
    );
    println!(
        "total fleet energy {:.0} J across {} rounds",
        sequential.total_energy_j(),
        ROUNDS
    );
}
