//! A full federated-learning cluster: a FedAvg server, a heterogeneous
//! pool of simulated Jetson clients, and BoFL controlling each client's
//! training pace. Every SGD step is real — the energy ledger and the
//! global model's accuracy come out of the same job loop.
//!
//! ```sh
//! cargo run --release --example fl_cluster
//! ```

use bofl::baselines::PerformantController;
use bofl::{BoflConfig, BoflController};
use bofl_device::Device;
use bofl_fl::prelude::*;
use bofl_fleet::FleetEngine;

fn config() -> FederationConfig {
    FederationConfig {
        num_clients: 6,
        clients_per_round: 3,
        rounds: 12,
        deadline_ratio: 2.5,
        dirichlet_alpha: 0.5, // non-IID label skew
        feature_dims: 10,
        classes: 5,
        learning_rate: 0.25,
        dropout_probability: 0.05,
        seed: 2022,
        ..FederationConfig::default()
    }
}

/// Alternate AGX and TX2 clients — a heterogeneous edge fleet.
fn mixed_devices(id: usize) -> Device {
    if id.is_multiple_of(2) {
        Device::jetson_agx()
    } else {
        Device::jetson_tx2()
    }
}

fn run(
    label: &str,
    make_controller: impl Fn(usize) -> Box<dyn bofl::task::PaceController> + 'static,
) -> RunHistory {
    // A small cluster doesn't need the parallel worker pool; the
    // single-threaded fleet engine keeps the run easy to step through.
    // Swap in `FleetEngine::new(workers)` to scale up (see the
    // `fleet_scale` example) — the trace is identical either way.
    let mut federation = Federation::builder(config())
        .device_factory(mixed_devices)
        .controller_factory(make_controller)
        .engine(FleetEngine::sequential())
        .build();
    let history = federation.run();
    println!("\n=== federation with {label} clients ===");
    println!(
        "{:>5} {:>10} {:>9} {:>10} {:>9}",
        "round", "deadline", "clients", "energy(J)", "accuracy"
    );
    for r in &history.rounds {
        println!(
            "{:>5} {:>9.1}s {:>6}/{:<2} {:>10.0} {:>8.1}%",
            r.round + 1,
            r.deadline_s,
            r.aggregated.len(),
            r.selected.len(),
            r.energy_j,
            r.test_accuracy * 100.0
        );
    }
    println!(
        "total energy {:.0} J, final accuracy {:.1}%",
        history.total_energy_j(),
        history.final_accuracy() * 100.0
    );
    history
}

fn main() {
    let bofl = run("BoFL", |_id| {
        Box::new(BoflController::new(BoflConfig::default()))
    });
    let performant = run("Performant", |_id| Box::new(PerformantController::new()));

    let saving = 1.0 - bofl.total_energy_j() / performant.total_energy_j();
    println!(
        "\nBoFL fleet used {:.1}% less energy than the Performant fleet,",
        saving * 100.0
    );
    println!(
        "while reaching {:.1}% vs {:.1}% final accuracy on the same data.",
        bofl.final_accuracy() * 100.0,
        performant.final_accuracy() * 100.0
    );
}
