//! The event-driven control plane end to end: a fleet with mid-round
//! churn (clients joining and leaving while rounds are in flight),
//! over-selection so rounds close on their quorum of first deliveries
//! instead of waiting for stragglers, and an event journal recording
//! every lifecycle transition — byte-identical at any worker count.
//!
//! ```sh
//! cargo run --release --example event_driven
//! ```

use bofl_control::prelude::*;
use bofl_fl::FederationConfig;

const CLIENTS: usize = 60;
const ROUNDS: usize = 12;
const PER_ROUND: usize = 12;
const FLEET_SEED: u64 = 2024;

fn simulation(workers: usize) -> ControlSimulation {
    let spec = FleetSpec::mixed(CLIENTS, FLEET_SEED);
    ControlSimulation::builder(spec)
        .federation(FederationConfig {
            clients_per_round: PER_ROUND,
            rounds: ROUNDS,
            deadline_ratio: 2.5,
            feature_dims: 8,
            classes: 4,
            seed: FLEET_SEED,
            // Over-select 50% extra so a round can close the moment a full
            // cohort has reported; require half the cohort as quorum.
            aggregation: AggregationPolicy::recovery(),
            ..FederationConfig::default()
        })
        .workers(workers)
        .faults(
            FaultPlan::new(FLEET_SEED ^ 0xFA17)
                .with_stragglers(0.2, (1.5, 3.5))
                .with_upload_failures(0.08)
                // 8% chance per round a client leaves the fleet — even
                // mid-round, as an ordinary lifecycle transition — and
                // stays away for 2 rounds before rejoining.
                .with_churn(0.08, 2),
        )
        .retry(RetryPolicy::recovery())
        .build()
}

fn main() {
    println!(
        "fleet: {CLIENTS} mixed AGX/TX2 clients, {ROUNDS} rounds × {PER_ROUND} nominal cohort, \
         churn + stragglers + lossy uplink, quorum-closed rounds"
    );

    let mut sim = simulation(4);
    let report = sim.run();

    println!("\nround closes:");
    for c in &report.closes {
        println!(
            "  round {:>2}: t={:>7.1}s accepted={} quorum={} {}{}",
            c.round,
            c.t_s,
            c.accepted,
            c.quorum,
            if c.quorum_met { "met" } else { "SHORTFALL" },
            if c.closed_early { ", closed early" } else { "" },
        );
    }

    let arrivals: usize = (0..ROUNDS as u32)
        .map(|r| report.journal.churn_counts(r).0)
        .sum();
    let departures: usize = (0..ROUNDS as u32)
        .map(|r| report.journal.churn_counts(r).1)
        .sum();
    println!(
        "\nchurn: {departures} departures, {arrivals} arrivals across {ROUNDS} rounds \
         (also in the metrics CSV's churn_arrivals/churn_departures columns)"
    );
    println!(
        "journal: {} events ({} evicted), {} rounds closed early on quorum",
        report.journal.total_appended(),
        report.journal.evicted(),
        report.early_closes(),
    );

    println!("\nlast 8 journal entries:");
    let skip = report.journal.len().saturating_sub(8);
    for e in report.journal.iter().skip(skip) {
        println!(
            "  #{:<5} r{:<2} client {:>3}  {:>11} -> {:<10} {}",
            e.seq,
            e.round,
            e.client,
            e.from.as_str(),
            e.to.as_str(),
            e.cause.as_str()
        );
    }

    // The headline guarantee, checked at the artifact level: the exact
    // run on one worker journals the identical bytes.
    let sequential = simulation(1).run();
    assert_eq!(
        report.journal.to_csv(),
        sequential.journal.to_csv(),
        "journal must not depend on worker count"
    );
    assert_eq!(report.history, sequential.history);
    println!("\ndeterminism: 4-worker and 1-worker journals are byte-identical ✓");

    // And the journal alone reconstructs the fleet's final states.
    let entries: Vec<EventEntry> = report.journal.iter().copied().collect();
    let rebuilt = ControlPlane::replay(entries.iter(), CLIENTS).expect("journal replays");
    let live = sim.plane();
    assert_eq!(rebuilt.as_slice(), live.lock().unwrap().states());
    println!("replay: journal reconstructs all {CLIENTS} client states ✓");

    println!(
        "\nfinal accuracy {:.1}%, total energy {:.0} J",
        report.final_accuracy() * 100.0,
        report.total_energy_j()
    );
}
