//! Deadline-sensitivity study through the public API (a miniature of the
//! paper's Fig. 12): how BoFL's savings and regret change as the server
//! grants looser deadlines.
//!
//! ```sh
//! cargo run --release --example deadline_sweep
//! ```

use bofl::baselines::{OracleController, PerformantController};
use bofl::metrics::{improvement_vs, regret_vs};
use bofl::prelude::*;

fn main() {
    let device = Device::jetson_agx();
    let task = FlTask::preset(TaskKind::ImdbLstm, Testbed::JetsonAgx);
    let rounds = 40;
    let runner = ClientRunner::new(device.clone(), task.clone(), 17);
    let profile = device.profile_all(&task);

    println!(
        "IMDB-LSTM on {}, {} rounds per point\n",
        device.name(),
        rounds
    );
    println!(
        "{:>6} {:>16} {:>14} {:>14}",
        "ratio", "improvement (%)", "regret (%)", "explored"
    );

    for ratio in [2.0, 2.5, 3.0, 3.5, 4.0] {
        let schedule = DeadlineSchedule::uniform(&device, &task, rounds, ratio, 33);

        let mut bofl = BoflController::new(BoflConfig::default());
        let bofl_run = runner.run(&mut bofl, schedule.deadlines());
        let perf_run = runner.run(&mut PerformantController::new(), schedule.deadlines());
        let mut oracle = OracleController::new(profile.clone());
        let oracle_run = runner.run(&mut oracle, schedule.deadlines());

        assert_eq!(bofl_run.deadlines_met(), rounds, "BoFL must never miss");

        println!(
            "{:>6.1} {:>16.1} {:>14.2} {:>14}",
            ratio,
            improvement_vs(&bofl_run, &perf_run) * 100.0,
            regret_vs(&bofl_run, &oracle_run) * 100.0,
            bofl.observations().len(),
        );
    }

    println!("\nExpected shape (paper Fig. 12): improvement grows with the ratio,");
    println!("regret shrinks — looser deadlines leave more room to pace down.");
}
