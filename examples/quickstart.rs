//! Quickstart: run BoFL against the Performant and Oracle baselines on a
//! simulated Jetson AGX training the CIFAR10-ViT task.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bofl::baselines::{OracleController, PerformantController};
use bofl::metrics::{improvement_vs, regret_vs};
use bofl::prelude::*;

fn main() {
    // 1. Pick a device and an FL task (Table 1 / Table 2 presets).
    let device = Device::jetson_agx();
    let task = FlTask::preset(TaskKind::Cifar10Vit, Testbed::JetsonAgx);
    println!(
        "device: {} ({} DVFS configurations)",
        device.name(),
        device.config_space().len()
    );
    println!("task:   {task}");
    println!(
        "T_min:  {:.1} s per round at x_max\n",
        device.round_latency_at_max(&task)
    );

    // 2. Sample 40 round deadlines uniformly from [T_min, 2·T_min], as the
    //    paper's server does at deadline ratio 2.
    let rounds = 40;
    let schedule = DeadlineSchedule::uniform(&device, &task, rounds, 2.0, 2022);
    let runner = ClientRunner::new(device.clone(), task.clone(), 7);

    // 3. Run the three controllers over the *same* deadlines.
    let mut bofl = BoflController::new(BoflConfig::default());
    let bofl_run = runner.run(&mut bofl, schedule.deadlines());

    let perf_run = runner.run(&mut PerformantController::new(), schedule.deadlines());

    let mut oracle = OracleController::new(device.profile_all(&task));
    let oracle_run = runner.run(&mut oracle, schedule.deadlines());

    // 4. Report.
    println!(
        "{:<12} {:>12} {:>10} {:>10}",
        "controller", "energy (J)", "deadlines", "explored"
    );
    for run in [&bofl_run, &perf_run, &oracle_run] {
        println!(
            "{:<12} {:>12.0} {:>7}/{:<2} {:>10}",
            run.controller,
            run.total_energy_j(),
            run.deadlines_met(),
            rounds,
            run.total_explored(),
        );
    }
    println!(
        "\nBoFL saves {:.1}% energy vs Performant (paper: 20.3%-25.9% at 100 rounds)",
        improvement_vs(&bofl_run, &perf_run) * 100.0
    );
    println!(
        "BoFL regret vs Oracle: {:.1}% (paper: 1.2%-3.4% at 100 rounds;\n\
         this 40-round demo amortizes the exploration phase less — run\n\
         `reproduce fig9` for the paper-scale numbers)",
        regret_vs(&bofl_run, &oracle_run) * 100.0
    );

    // 5. Peek at the Pareto set BoFL discovered.
    println!("\nBoFL's searched Pareto configurations (T̂, Ê per minibatch):");
    for agg in bofl.observations().pareto_set() {
        println!(
            "  {}  ->  {:.3} s, {:.2} J",
            agg.config,
            agg.mean_latency_s(),
            agg.mean_energy_j()
        );
    }
}
