//! The pluggable transport under adversarial chaos, end to end: finished
//! updates travel over real OS-thread loopback lanes, a seeded
//! [`ChaosPlan`] drops, delays, duplicates, reorders and partitions them
//! on the wire, and the server's liveness tracker suspects, expires or
//! heals the silent senders instead of hanging the round. Degraded
//! closes arm over-selection escalation for the next round.
//!
//! ```sh
//! cargo run --release --example chaos_transport
//! ```

use bofl_control::prelude::*;
use bofl_fl::FederationConfig;

const CLIENTS: usize = 40;
const ROUNDS: usize = 10;
const PER_ROUND: usize = 8;
const FLEET_SEED: u64 = 2025;

fn simulation(lanes: usize) -> ControlSimulation {
    let spec = FleetSpec::mixed(CLIENTS, FLEET_SEED);
    ControlSimulation::builder(spec)
        .federation(FederationConfig {
            clients_per_round: PER_ROUND,
            rounds: ROUNDS,
            deadline_ratio: 2.5,
            feature_dims: 8,
            classes: 4,
            seed: FLEET_SEED,
            aggregation: AggregationPolicy::recovery(),
            ..FederationConfig::default()
        })
        .workers(4)
        .retry(RetryPolicy::recovery())
        // Real std::thread lanes carry the updates; chaos decorates them.
        .transport(LoopbackTransport::new(lanes))
        .chaos(
            ChaosPlan::new(FLEET_SEED ^ 0xC4A0)
                .with_drops(0.2)
                .with_delays(0.2, NetworkModel::lte(), 2.0e6)
                .with_duplicates(0.1)
                .with_reordering(0.3, 8.0)
                .with_partitions(0.15, (30.0, 600.0)),
        )
        // Suspect at 1.25× the round deadline, expire half a deadline
        // later, ±10% seeded jitter so timeouts never storm in sync.
        .liveness(LivenessPolicy::recovery(FLEET_SEED))
        .build()
}

fn main() {
    println!(
        "fleet: {CLIENTS} mixed AGX/TX2 clients, {ROUNDS} rounds × {PER_ROUND} nominal cohort, \
         loopback lanes + seeded chaos (drop/delay/dup/reorder/partition) + liveness"
    );

    let mut sim = simulation(4);
    let report = sim.run();

    println!("\nround closes:");
    for c in &report.closes {
        println!(
            "  round {:>2}: t={:>7.1}s accepted={} quorum={} {}{}{}",
            c.round,
            c.t_s,
            c.accepted,
            c.quorum,
            if c.quorum_met { "met" } else { "SHORTFALL" },
            if c.closed_early { ", closed early" } else { "" },
            if c.degraded { ", DEGRADED" } else { "" },
        );
    }

    let plane = sim.plane();
    let wire = plane.lock().unwrap().wire_totals();
    println!(
        "\nwire: {} sent, {} dropped, {} delayed, {} duplicated, {} reordered, {} partition-held",
        wire.sent, wire.dropped, wire.delayed, wire.duplicated, wire.reordered, wire.partition_held
    );

    let (mut suspected, mut expired, mut healed) = (0, 0, 0);
    for r in 0..ROUNDS as u32 {
        let (s, e, h) = report.journal.liveness_counts(r);
        suspected += s;
        expired += e;
        healed += h;
    }
    println!(
        "liveness: {suspected} suspected, {healed} healed, {expired} expired \
         (also in the metrics CSV's suspected/expired/healed columns)"
    );
    println!(
        "degraded closes: {} (each arms over-selection escalation for the next round)",
        report.closes.iter().filter(|c| c.degraded).count()
    );

    // Chaos is seeded per (round, client), so the lane count is free to
    // change without changing a single journalled byte.
    let two_lanes = simulation(2).run();
    assert_eq!(
        report.journal.to_csv(),
        two_lanes.journal.to_csv(),
        "journal must not depend on transport lane count"
    );
    println!("\ndeterminism: 4-lane and 2-lane journals are byte-identical ✓");

    println!(
        "\nfinal accuracy {:.1}%, total energy {:.0} J",
        report.final_accuracy() * 100.0,
        report.total_energy_j()
    );
}
