//! Hierarchical sharded aggregation at the million-client scale.
//!
//! A registered fleet of 1,000,000 lightweight clients; each round an
//! energy-aware sampler picks a 4,096-client cohort, faults and retries
//! play out deterministically, updates are int8-quantized on the uplink,
//! and 64 aggregator shards fold the survivors into fixed-point partial
//! sums that the root merges in canonical order. The headline property:
//! the per-round trace and the final global model are **byte-identical**
//! at any shard count and any worker count — sharding is pure execution
//! geometry, never semantics.
//!
//! ```sh
//! cargo run --release --example sharded_fleet
//! ```

use bofl_fleet::prelude::*;
use std::time::Instant;

const FLEET: usize = 1_000_000;
const COHORT: usize = 4_096;
const ROUNDS: usize = 100;
const SEED: u64 = 2022;

fn config(shards: usize, workers: usize) -> ScaleConfig {
    ScaleConfig {
        fleet_size: FLEET,
        cohort: COHORT,
        rounds: ROUNDS,
        dim: 64,
        seed: SEED,
        shard_plan: ShardPlan::with_shards(shards),
        workers,
        shard_quorum_fraction: 0.5,
        agx_fraction: 0.5,
        max_upload_attempts: 3,
        deadline_headroom: 2.0,
        error_feedback: false,
    }
}

fn run(shards: usize, workers: usize) -> (ScaleReport, f64) {
    let mut sim = ScaleSimulation::builder(config(shards, workers))
        .sampler(EnergyAwareSampler { alpha: 2.0 })
        .compressor(Int8Quantizer)
        .faults(
            FaultPlan::new(SEED ^ 0xFA17)
                .with_dropout(0.02)
                .with_stragglers(0.08, (1.2, 3.0))
                .with_upload_failures(0.03),
        )
        .build();
    let t0 = Instant::now();
    let report = sim.run();
    (report, t0.elapsed().as_secs_f64())
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("== sharded_fleet: {FLEET} clients x {ROUNDS} rounds, cohort {COHORT} ==");
    println!("host cores: {cores}\n");

    let (reference, secs) = run(64, cores);
    let last = reference.trace.last().expect("rounds ran");
    println!("64 shards, {cores} workers: {secs:.2} s wall");
    println!(
        "  aggregated/round (last): {}/{}   retries: {}  recovered: {}",
        last.aggregated, last.selected, last.retries, last.recovered
    );
    println!(
        "  fleet energy: {:.1} kJ   uplink: {:.1} MB compressed vs {:.1} MB raw ({:.1}x, {})",
        reference.total_energy_j() / 1e3,
        reference.wire_bytes() as f64 / 1e6,
        reference.raw_bytes() as f64 / 1e6,
        reference.compression_ratio(),
        reference.compressor,
    );
    println!(
        "  shard-quorum shortfall rounds: {}   model hash: {:016x}",
        reference.shard_shortfall_rounds(),
        reference.model_hash()
    );

    // The determinism claim, demonstrated rather than asserted in prose:
    // a completely different execution geometry, the same bytes.
    let (alt, alt_secs) = run(16, 1);
    println!("\n16 shards, 1 worker: {alt_secs:.2} s wall");
    assert_eq!(
        alt.trace, reference.trace,
        "trace must be byte-identical across shard/worker counts"
    );
    assert_eq!(
        alt.model_hash(),
        reference.model_hash(),
        "final model must be byte-identical across shard/worker counts"
    );
    println!("trace + final model byte-identical across 64x{cores} and 16x1 — OK");

    // Sampler comparison on a shorter horizon: energy-aware vs uniform.
    let mut uniform = ScaleSimulation::builder(ScaleConfig {
        rounds: 20,
        ..config(64, cores)
    })
    .build();
    let mut aware = ScaleSimulation::builder(ScaleConfig {
        rounds: 20,
        ..config(64, cores)
    })
    .sampler(EnergyAwareSampler { alpha: 2.0 })
    .build();
    let (u, a) = (uniform.run(), aware.run());
    println!(
        "\n20-round sampler comparison: uniform {:.1} kJ vs energy-aware {:.1} kJ ({:.0}% saved)",
        u.total_energy_j() / 1e3,
        a.total_energy_j() / 1e3,
        (1.0 - a.total_energy_j() / u.total_energy_j()) * 100.0
    );
}
