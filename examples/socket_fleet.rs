//! The socket-backed fleet, end to end: a federation round carried over
//! real localhost TCP connections with length-prefixed checksummed
//! frames, forced reconnects healed by seeded backoff, a crash-safe
//! write-ahead log that a killed coordinator resumes from, and a live
//! `JournalTail` streaming the log while the run appends to it.
//!
//! Virtual timestamps ride inside the frames, so every one of these
//! stacks reproduces the virtual engine's journal byte for byte — real
//! I/O, zero nondeterminism.
//!
//! ```sh
//! cargo run --release --example socket_fleet
//! ```

use std::path::PathBuf;
use std::time::Duration;

use bofl_control::prelude::*;
use bofl_fl::FederationConfig;

const CLIENTS: usize = 12;
const ROUNDS: usize = 4;
const PER_ROUND: usize = 4;
const SEED: u64 = 2026;

fn builder() -> ControlSimulationBuilder {
    ControlSimulation::builder(FleetSpec::mixed(CLIENTS, SEED))
        .federation(FederationConfig {
            clients_per_round: PER_ROUND,
            rounds: ROUNDS,
            feature_dims: 6,
            classes: 3,
            seed: SEED,
            aggregation: AggregationPolicy::recovery(),
            ..FederationConfig::default()
        })
        .workers(4)
        .faults(
            FaultPlan::new(SEED ^ 0xFA17)
                .with_dropout(0.1)
                .with_stragglers(0.2, (1.5, 2.5)),
        )
        .retry(RetryPolicy::recovery())
}

fn wal_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "bofl-socket-fleet-{}-{name}.wal",
        std::process::id()
    ))
}

fn main() {
    println!(
        "fleet: {CLIENTS} mixed clients, {ROUNDS} rounds × {PER_ROUND} cohort, \
         dropout + stragglers + retries throughout\n"
    );

    // 1. The reference: the virtual wire, no I/O at all.
    let reference = builder().build().run();
    println!(
        "virtual reference: {} journal events",
        reference.journal.len()
    );

    // 2. The same run over real TCP: four lanes, each a live connection
    //    to an in-process coordinator, framed + checksummed + acked.
    let socket = builder()
        .transport(SocketTransport::in_process(4))
        .build()
        .run();
    assert_eq!(
        reference.journal.to_jsonl(),
        socket.journal.to_jsonl(),
        "socket journal must be byte-identical to virtual"
    );
    println!("socket(4 lanes):   byte-identical journal ✓");

    // 3. Hostile accept loop: the coordinator tears down the first three
    //    accepted connections every round; lanes come back through seeded
    //    exponential backoff and (round, client, copy) dedup keeps
    //    delivery exactly-once.
    let reconnected = builder()
        .transport(
            SocketTransport::in_process(2)
                .with_accept_faults(3)
                .with_ack_timeout(Duration::from_millis(300)),
        )
        .build()
        .run();
    assert_eq!(
        reference.journal.to_jsonl(),
        reconnected.journal.to_jsonl(),
        "forced reconnects must not change the journal"
    );
    println!("forced reconnects: byte-identical journal ✓");

    // 4. Crash-safe resume: run two rounds with a WAL, "crash" (drop the
    //    process state; only the log survives), resume, finish, and land
    //    on the same journal as the uninterrupted reference.
    let path = wal_path("demo");
    let mut victim = builder()
        .transport(SocketTransport::in_process(2))
        .wal(&path)
        .build();
    victim.run_rounds(2);
    drop(victim); // the crash: all in-memory state is gone

    let mut resumed = builder()
        .transport(SocketTransport::in_process(2))
        .resume_from_wal(&path)
        .build();
    let report = *resumed.resume_report().expect("resume report");
    println!(
        "\ncrash at round 2 → resume: replayed {} events, next round {}, clock {:.1}s",
        report.events_replayed, report.next_round, report.now_s
    );
    let finished = resumed.run();
    assert_eq!(
        reference.journal.to_jsonl(),
        finished.journal.to_jsonl(),
        "the resumed run must be indistinguishable from one that never died"
    );
    println!("resumed run:       byte-identical journal ✓");

    // 5. The live tail: stream the WAL back as JSONL — the same bytes
    //    `journal_tail <wal>` prints — and check it reproduces the
    //    journal artifact exactly.
    let mut tail = JournalTail::open(&path).expect("open WAL for tailing");
    let mut streamed = String::new();
    while let Some(record) = tail.poll().expect("WAL is clean") {
        if let WalRecord::Event(e) = record {
            streamed.push_str(&e.to_json());
            streamed.push('\n');
        }
    }
    assert_eq!(streamed, finished.journal.to_jsonl());
    println!("journal_tail:      WAL stream == journal.jsonl ✓");
    std::fs::remove_file(&path).ok();

    // 6. Spawned mode, if the client binary is around: one OS process
    //    per update, talking the same wire protocol. `cargo build -p
    //    bofl-control --bins` puts `socket_client` next to this example's
    //    parent directory.
    let client_exe = std::env::current_exe()
        .ok()
        .and_then(|p| Some(p.parent()?.parent()?.join("socket_client")))
        .filter(|p| p.exists());
    match client_exe {
        Some(exe) => {
            let messages: Vec<Envelope> = (0..4)
                .map(|i| Envelope {
                    round: 0,
                    client_id: i,
                    t_send_s: 5.0 + i as f64 / 3.0,
                })
                .collect();
            let want = VirtualTransport.carry(0, 5.0, &messages);
            let got = SocketTransport::spawned(&exe).carry(0, 5.0, &messages);
            assert_eq!(got, want, "spawned processes must match the virtual carry");
            println!(
                "spawned clients:   {} OS processes, identical carry ✓",
                messages.len()
            );
        }
        None => println!(
            "spawned clients:   skipped (build the socket_client bin with \
             `cargo build --release -p bofl-control` to try it)"
        ),
    }

    println!(
        "\nfinal accuracy {:.1}%, total energy {:.0} J — identical on every wire",
        reference.final_accuracy() * 100.0,
        reference.total_energy_j()
    );
}
