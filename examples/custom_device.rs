//! Bring your own board and your own network: BoFL only needs the
//! frequency grids and a latency/power model, so a downstream user can
//! describe a custom edge device and a custom training workload entirely
//! through the public API and get energy-optimal pace control for it.
//!
//! ```sh
//! cargo run --release --example custom_device
//! ```

use bofl::baselines::{OracleController, PerformantController};
use bofl::metrics::{improvement_vs, regret_vs};
use bofl::prelude::*;
use bofl_device::{CpuModel, FreqTable, GpuModel, MemoryModel, RailModel};
use bofl_workload::{ArchEfficiency, Dataset, GpuArch, ModelClass, NnModel};

fn main() {
    // A hypothetical "EdgeBox 100": a small quad-core board with a modest
    // Pascal-class GPU and three memory steps — 8×6×3 = 144 configurations.
    let device = Device::builder("EdgeBox 100")
        .cpu_table(FreqTable::linspace_mhz(600, 2200, 8))
        .gpu_table(FreqTable::linspace_mhz(150, 1050, 6))
        .mem_table(FreqTable::from_mhz(&[800, 1333, 1866]))
        .cpu_model(CpuModel {
            ipc_factor: 0.8,
            pipeline_cores: 3.0,
        })
        .gpu_model(GpuModel {
            arch: GpuArch::Pascal,
            peak_flops_per_cycle: 768.0,
        })
        .memory_model(MemoryModel {
            bytes_per_cycle: 24.0,
        })
        .fixed_overhead_s(0.025)
        .cpu_rail(RailModel {
            coeff: 2.0,
            v0: 0.55,
            v1: 0.28,
            idle_fraction: 0.25,
        })
        .gpu_rail(RailModel {
            coeff: 5.0,
            v0: 0.55,
            v1: 0.40,
            idle_fraction: 0.25,
        })
        .mem_rail(RailModel {
            coeff: 2.2,
            v0: 0.60,
            v1: 0.12,
            idle_fraction: 0.25,
        })
        .static_power_w(2.8)
        .build();

    // A custom MobileNet-style workload trained on a private camera feed.
    let model = NnModel::new(
        "MobileNetV2",
        ModelClass::Cnn,
        1.7e9, // FLOPs per sample (fwd + bwd)
        3.1e8, // effective DRAM bytes per sample
        9.0e6, // host preprocessing cycles per sample
        6.0e7, // serialized launch cycles per batch (many small convs)
        1.4e7, // 3.5 M parameters
        ArchEfficiency {
            volta: 0.30,
            pascal: 0.24,
        },
    );
    let dataset = Dataset::new("CameraFeed", 128 * 128 * 3, 6);
    let task = FlTask::new(model, dataset, 16, 2, 60);

    println!(
        "{}: {} configurations, task {task}",
        device.name(),
        device.config_space().len()
    );
    let t_min = device.round_latency_at_max(&task);
    println!("T_min = {:.1} s per round at x_max\n", t_min);

    // Run BoFL vs the baselines at deadline ratio 3.
    let rounds = 30;
    let schedule = DeadlineSchedule::uniform(&device, &task, rounds, 3.0, 9);
    let runner = ClientRunner::new(device.clone(), task.clone(), 4);

    let mut bofl = BoflController::new(BoflConfig::default());
    let bofl_run = runner.run(&mut bofl, schedule.deadlines());
    let perf_run = runner.run(&mut PerformantController::new(), schedule.deadlines());
    let mut oracle = OracleController::new(device.profile_all(&task));
    let oracle_run = runner.run(&mut oracle, schedule.deadlines());

    println!(
        "BoFL       {:>9.0} J  ({}/{} deadlines met)",
        bofl_run.total_energy_j(),
        bofl_run.deadlines_met(),
        rounds
    );
    println!(
        "Performant {:>9.0} J  ({}/{} deadlines met)",
        perf_run.total_energy_j(),
        perf_run.deadlines_met(),
        rounds
    );
    println!(
        "Oracle     {:>9.0} J  ({}/{} deadlines met)",
        oracle_run.total_energy_j(),
        oracle_run.deadlines_met(),
        rounds
    );
    println!(
        "\nimprovement vs Performant: {:.1}%, regret vs Oracle: {:.1}%",
        improvement_vs(&bofl_run, &perf_run) * 100.0,
        regret_vs(&bofl_run, &oracle_run) * 100.0
    );
    println!(
        "explored {} of {} configurations ({:.1}%)",
        bofl.observations().len(),
        device.config_space().len(),
        bofl.observations().len() as f64 / device.config_space().len() as f64 * 100.0
    );
}
