//! Reporting-deadline mode (the paper's footnote-3 extension): the server
//! specifies when it must *receive* each update; every client infers its
//! own training deadline from a bandwidth estimator and still paces with
//! BoFL underneath.
//!
//! ```sh
//! cargo run --release --example reporting_deadlines
//! ```

use bofl::{BoflConfig, BoflController};
use bofl_fl::prelude::*;

fn run(policy: DeadlinePolicy, label: &str) -> RunHistory {
    let config = FederationConfig {
        num_clients: 4,
        clients_per_round: 2,
        rounds: 8,
        deadline_ratio: 2.5,
        classes: 4,
        feature_dims: 8,
        seed: 1234,
        deadline_policy: policy,
        ..FederationConfig::default()
    };
    let mut federation = Federation::builder(config)
        .controller_factory(|_id| Box::new(BoflController::new(BoflConfig::fast_test())))
        .build();
    let history = federation.run();
    let aggregated: usize = history.rounds.iter().map(|r| r.aggregated.len()).sum();
    let selected: usize = history.rounds.iter().map(|r| r.selected.len()).sum();
    println!(
        "{label:<22} updates delivered {aggregated}/{selected}, \
         energy {:.0} J, final accuracy {:.1}%",
        history.total_energy_j(),
        history.final_accuracy() * 100.0
    );
    history
}

fn main() {
    println!("Same federation under three deadline policies:\n");
    run(DeadlinePolicy::Training, "training deadlines");
    run(
        DeadlinePolicy::Reporting(NetworkModel::wifi()),
        "reporting over Wi-Fi",
    );
    run(
        DeadlinePolicy::Reporting(NetworkModel::lte()),
        "reporting over LTE",
    );

    println!(
        "\nUnder reporting deadlines each client subtracts a conservative\n\
         upload budget (EWMA bandwidth estimator, primed from the model\n\
         download) from the reporting window and hands the remainder to\n\
         BoFL as its training deadline — paper footnote 3, implemented in\n\
         bofl_fl::network."
    );
}
