//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The BoFL workspace builds in hermetic environments with no access to
//! crates.io, so the handful of `rand` 0.8 APIs the repo actually uses are
//! vendored here behind the same module paths and trait shapes:
//!
//! - [`RngCore`] / [`Rng`] with `gen::<T>()` for the primitive types the
//!   simulators draw (`f64`, `f32`, `u32`, `u64`, `bool`);
//! - [`SeedableRng::seed_from_u64`];
//! - [`rngs::StdRng`] — here a xoshiro256** generator seeded through
//!   SplitMix64 (not the CSPRNG real `rand` ships; everything in this
//!   workspace needs reproducibility and statistical quality, not
//!   cryptographic strength);
//! - [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Streams differ from upstream `rand`, which is acceptable: every consumer
//! in the workspace treats seeds as opaque reproducibility handles, and all
//! statistical assertions are tolerance-based.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The raw generator interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types drawable from the "standard" distribution of a generator:
/// uniform in `[0, 1)` for floats, uniform over all values for integers.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits — the canonical [0, 1) double.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The user-facing generator interface (blanket-implemented for every
/// [`RngCore`], mirroring `rand` 0.8).
pub trait Rng: RngCore {
    /// Draws one value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen::<f64>() < p
    }

    /// Draws a uniform `usize` in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_index(&mut self, low: usize, high: usize) -> usize {
        assert!(low < high, "cannot sample an empty range");
        let span = (high - low) as u64;
        // Multiply-shift bounded sampling (Lemire); bias is < 2^-64 × span,
        // far below anything these simulations can observe.
        low + (((self.next_u64() as u128 * span as u128) >> 64) as u64) as usize
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Bundled generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded via SplitMix64. Fast, passes BigCrush, and — unlike the
    /// upstream ChaCha-based `StdRng` — trivially auditable.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of
            // state; guarantees a non-zero state for any seed.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random slice operations.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_index(0, i + 1));
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_index(0, self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_is_uniform_unit() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        assert!(v.choose(&mut rng).is_some());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2800..3200).contains(&hits), "hits {hits}");
    }
}
