//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The BoFL workspace builds hermetically, so this crate vendors the subset
//! of proptest the repo's property tests use: the [`proptest!`] macro,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, range/tuple/vec
//! strategies and the `prop_map`/`prop_flat_map` combinators.
//!
//! Differences from upstream, by design:
//!
//! - sampling is **deterministic**: the case seed is derived from the test
//!   name and case index, so failures reproduce without a persistence file;
//! - there is **no shrinking** — a failing case reports its case number and
//!   message, which is enough for the tolerance-style assertions used here;
//! - only the strategy combinators listed above exist.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Deterministic case-level RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator for one test case.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform double in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Strategy definitions and combinators.
pub mod strategy {
    use super::TestRng;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then generates from the
        /// strategy `f` returns for it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (self.end - self.start) * rng.unit_f64() as f32
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty strategy range");
                    let span = (self.end() - self.start()) as u64 + 1;
                    self.start() + rng.below(span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident / $v:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A / a, B / b)
        (A / a, B / b, C / c)
        (A / a, B / b, C / c, D / d)
        (A / a, B / b, C / c, D / d, E / e)
    }

    /// A strategy producing one constant value (proptest's `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// A size specification for [`vec`]: an exact length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::TestRng;

    /// Uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The any-boolean strategy (proptest's `bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Leaf strategies grouped the way proptest's `prop` module exposes them.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
}

/// Test-runner configuration and error plumbing.
pub mod test_runner {
    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 48 keeps the hermetic suite quick
            // while still exercising each property across a real spread.
            // Like upstream, `PROPTEST_CASES` overrides the default so CI
            // stress jobs can dial the case count up without code changes.
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse::<u32>().ok())
                .filter(|&c| c > 0)
                .unwrap_or(48);
            ProptestConfig { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the property is falsified.
        Fail(String),
        /// The case was rejected by `prop_assume!`; try another.
        Reject(String),
    }

    impl TestCaseError {
        /// Creates a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Creates a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// FNV-1a over the test name: the per-test base seed.
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::core::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` ({:?} != {:?})",
            ::core::stringify!($left),
            ::core::stringify!($right),
            l,
            r
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both {:?})",
            ::core::stringify!($left),
            ::core::stringify!($right),
            l
        );
    }};
}

/// Rejects (skips) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::core::stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal item muncher for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let base = $crate::test_runner::seed_for(::core::stringify!($name));
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            // Rejections (prop_assume) draw replacement cases, bounded so a
            // never-satisfiable assumption cannot loop forever.
            let max_attempts = config.cases.saturating_mul(16).max(64);
            while passed < config.cases && attempts < max_attempts {
                let case = attempts;
                attempts += 1;
                let mut rng = $crate::TestRng::new(
                    base ^ (case as u64).wrapping_mul(0xA24B_AED4_963E_E407),
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        ::std::panic!(
                            "property `{}` falsified at case {case}: {msg}",
                            ::core::stringify!($name),
                        );
                    }
                }
            }
            ::std::assert!(
                passed > 0,
                "property `{}` rejected every generated case",
                ::core::stringify!($name),
            );
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -3.0f64..3.0, n in 1usize..8, s in 0u64..1000) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..8).contains(&n));
            prop_assert!(s < 1000);
        }

        #[test]
        fn combinators_compose(
            v in collection::vec((0.1f64..1.0, 1u32..5), 2..6),
            flag in prop::bool::ANY,
            m in (2usize..5).prop_flat_map(|n| collection::vec(0.0f64..1.0, n * n)),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&(f, i)| f < 1.0 && (1..5).contains(&i)));
            prop_assert_eq!(flag, flag);
            let n = (m.len() as f64).sqrt() as usize;
            prop_assert_eq!(n * n, m.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// Assume-rejection draws replacement cases instead of failing.
        #[test]
        fn assume_rejects(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failures_panic() {
        // No `#[test]` on the inner fn: items inside a fn body cannot be
        // test items, so we invoke the generated runner directly.
        proptest! {
            fn always_fails(_x in 0u32..10) {
                prop_assert!(false, "intentional");
            }
        }
        always_fails();
    }
}
