//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the subset the BoFL workspace's benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`criterion_group!`]/[`criterion_main!`] and
//! [`Criterion::sample_size`] — with plain wall-clock timing and median
//! reporting instead of upstream's statistical machinery. Good enough to
//! compare orders of magnitude and to keep `cargo bench` runnable in
//! hermetic environments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost (accepted for API parity; the
/// stub re-runs setup per batch regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
        println!("bench {name:<48} {:>14} /iter", format_time(median));
        self
    }
}

/// Collects timing for one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over a fixed iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        const ITERS: u64 = 3;
        let start = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += ITERS;
    }

    /// Times `routine` on inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        const ITERS: u64 = 3;
        for _ in 0..ITERS {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += start.elapsed();
        }
        self.iters += ITERS;
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a benchmark group, mirroring criterion's two accepted forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_reports() {
        let mut c = Criterion::default().sample_size(2);
        let mut ran = 0u64;
        c.bench_function("smoke/iter", |b| b.iter(|| ran += 1))
            .bench_function("smoke/batched", |b| {
                b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput)
            });
        assert!(ran >= 2);
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
