//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The workspace's `serde` integration is an optional, off-by-default
//! feature used only for annotating types with
//! `#[cfg_attr(feature = "serde", derive(serde::Serialize, ...))]`. This
//! stub lets those features *resolve* (and compile) in hermetic builds:
//! the traits are markers and the derives are no-ops, so enabling the
//! feature type-checks but provides no actual serialization. Swap the
//! `[workspace.dependencies]` entry back to crates.io `serde` to get real
//! encoders.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
