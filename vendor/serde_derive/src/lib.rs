//! No-op `Serialize`/`Deserialize` derives for the vendored serde stub:
//! they accept any input and emit nothing, which is exactly enough for
//! `#[cfg_attr(feature = "serde", derive(serde::Serialize))]` annotations
//! to compile in hermetic builds.

use proc_macro::TokenStream;

/// Accepts the annotated item and emits no code.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts the annotated item and emits no code.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
